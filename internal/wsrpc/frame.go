// Package wsrpc is a from-scratch RFC 6455 WebSocket implementation (client
// and server) built only on the standard library. The XRP Ledger exposes its
// primary API over WebSocket; the paper's collection methodology ("we use
// the ledger method of the Websocket API") is reproduced on top of this
// package.
package wsrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcode identifies a WebSocket frame type.
type Opcode byte

// RFC 6455 frame opcodes.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// IsControl reports whether the opcode is a control frame: control frames
// may be injected between fragments and carry at most 125 payload bytes.
func (o Opcode) IsControl() bool { return o >= OpClose }

// Frame is a single WebSocket frame.
type Frame struct {
	FIN     bool
	Opcode  Opcode
	Masked  bool
	MaskKey [4]byte
	Payload []byte
}

// Frame-size guards: control frames are capped by the RFC; data frames by a
// sanity limit so a corrupt length prefix cannot trigger huge allocations.
const (
	maxControlPayload = 125
	// MaxFramePayload bounds a single frame; ledgers serialize to well
	// under this.
	MaxFramePayload = 64 << 20
)

// Errors surfaced by the codec.
var (
	ErrFrameTooLarge     = errors.New("wsrpc: frame exceeds maximum payload size")
	ErrBadControlFrame   = errors.New("wsrpc: control frame fragmented or too large")
	ErrReservedBits      = errors.New("wsrpc: reserved bits set (no extensions negotiated)")
	ErrBadLengthEncoding = errors.New("wsrpc: non-minimal length encoding")
)

// WriteFrame serializes a frame to w. The payload is masked in place when
// f.Masked is set (clients mask, servers must not).
func WriteFrame(w io.Writer, f Frame) error {
	if f.Opcode.IsControl() && (len(f.Payload) > maxControlPayload || !f.FIN) {
		return ErrBadControlFrame
	}
	var header [14]byte
	n := 2
	header[0] = byte(f.Opcode)
	if f.FIN {
		header[0] |= 0x80
	}
	length := len(f.Payload)
	switch {
	case length <= 125:
		header[1] = byte(length)
	case length <= 0xFFFF:
		header[1] = 126
		binary.BigEndian.PutUint16(header[2:4], uint16(length))
		n = 4
	default:
		header[1] = 127
		binary.BigEndian.PutUint64(header[2:10], uint64(length))
		n = 10
	}
	payload := f.Payload
	if f.Masked {
		header[1] |= 0x80
		copy(header[n:n+4], f.MaskKey[:])
		n += 4
		payload = make([]byte, length)
		for i, b := range f.Payload {
			payload[i] = b ^ f.MaskKey[i%4]
		}
	}
	if _, err := w.Write(header[:n]); err != nil {
		return fmt.Errorf("wsrpc: writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("wsrpc: writing frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame parses one frame from r, unmasking the payload if needed.
func ReadFrame(r io.Reader) (Frame, error) {
	var f Frame
	var head [2]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return f, err
	}
	f.FIN = head[0]&0x80 != 0
	if head[0]&0x70 != 0 {
		return f, ErrReservedBits
	}
	f.Opcode = Opcode(head[0] & 0x0F)
	f.Masked = head[1]&0x80 != 0
	length := uint64(head[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return f, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
		if length <= 125 {
			return f, ErrBadLengthEncoding
		}
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return f, err
		}
		length = binary.BigEndian.Uint64(ext[:])
		if length <= 0xFFFF {
			return f, ErrBadLengthEncoding
		}
	}
	if f.Opcode.IsControl() && (length > maxControlPayload || !f.FIN) {
		return f, ErrBadControlFrame
	}
	if length > MaxFramePayload {
		return f, ErrFrameTooLarge
	}
	if f.Masked {
		if _, err := io.ReadFull(r, f.MaskKey[:]); err != nil {
			return f, err
		}
	}
	f.Payload = make([]byte, length)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return f, err
	}
	if f.Masked {
		for i := range f.Payload {
			f.Payload[i] ^= f.MaskKey[i%4]
		}
	}
	return f, nil
}
