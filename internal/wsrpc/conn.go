package wsrpc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned once the close handshake has completed.
var ErrClosed = errors.New("wsrpc: connection closed")

// Conn is an established WebSocket connection. Reads must come from a single
// goroutine; writes are internally serialized so control responses (pong,
// close echo) can interleave with application messages.
type Conn struct {
	netConn net.Conn
	br      *bufio.Reader
	client  bool // client connections mask outgoing frames

	writeMu sync.Mutex
	maskRNG uint64

	closeOnce sync.Once
	closed    bool
}

func newConn(nc net.Conn, br *bufio.Reader, client bool, maskSeed uint64) *Conn {
	if br == nil {
		br = bufio.NewReader(nc)
	}
	return &Conn{netConn: nc, br: br, client: client, maskRNG: maskSeed | 1}
}

// nextMask produces mask keys from a cheap xorshift generator; RFC 6455 only
// requires unpredictability from the network's perspective to defeat proxy
// cache poisoning, which this satisfies for the simulator's loopback use.
func (c *Conn) nextMask() (k [4]byte) {
	c.maskRNG ^= c.maskRNG << 13
	c.maskRNG ^= c.maskRNG >> 7
	c.maskRNG ^= c.maskRNG << 17
	binary.BigEndian.PutUint32(k[:], uint32(c.maskRNG))
	return k
}

func (c *Conn) writeFrame(f Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed && f.Opcode != OpClose {
		return ErrClosed
	}
	if c.client {
		f.Masked = true
		f.MaskKey = c.nextMask()
	}
	return WriteFrame(c.netConn, f)
}

// WriteMessage sends a complete text or binary message.
func (c *Conn) WriteMessage(op Opcode, data []byte) error {
	if op != OpText && op != OpBinary {
		return fmt.Errorf("wsrpc: WriteMessage with opcode %d", op)
	}
	return c.writeFrame(Frame{FIN: true, Opcode: op, Payload: data})
}

// WriteFragmented sends a message split into frames of at most chunk bytes,
// exercising RFC 6455 §5.4 fragmentation. Peers reassemble transparently in
// ReadMessage. The write lock is held across all fragments so concurrent
// writers cannot interleave data frames (control frames from the peer may
// still arrive between fragments, which is legal).
func (c *Conn) WriteFragmented(op Opcode, data []byte, chunk int) error {
	if op != OpText && op != OpBinary {
		return fmt.Errorf("wsrpc: WriteFragmented with opcode %d", op)
	}
	if chunk <= 0 {
		return fmt.Errorf("wsrpc: non-positive chunk size %d", chunk)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	first := true
	for {
		frame := Frame{Opcode: OpContinuation}
		if first {
			frame.Opcode = op
		}
		if len(data) <= chunk {
			frame.FIN = true
			frame.Payload = data
		} else {
			frame.Payload = data[:chunk]
		}
		if c.client {
			frame.Masked = true
			frame.MaskKey = c.nextMask()
		}
		if err := WriteFrame(c.netConn, frame); err != nil {
			return err
		}
		if frame.FIN {
			return nil
		}
		data = data[chunk:]
		first = false
	}
}

// WriteJSON marshals v and sends it as a text message.
func (c *Conn) WriteJSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wsrpc: marshaling message: %w", err)
	}
	return c.WriteMessage(OpText, data)
}

// Ping sends a ping control frame.
func (c *Conn) Ping(data []byte) error {
	return c.writeFrame(Frame{FIN: true, Opcode: OpPing, Payload: data})
}

// ReadMessage returns the next complete data message, transparently
// reassembling fragments, answering pings and completing the close
// handshake (after which ErrClosed is returned).
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	var msgOp Opcode
	var buf []byte
	assembling := false
	for {
		f, err := ReadFrame(c.br)
		if err != nil {
			return 0, nil, err
		}
		// Masking direction check: clients must mask, servers must not.
		if c.client == f.Masked {
			return 0, nil, fmt.Errorf("wsrpc: wrong masking direction (client=%v masked=%v)", c.client, f.Masked)
		}
		switch f.Opcode {
		case OpPing:
			if err := c.writeFrame(Frame{FIN: true, Opcode: OpPong, Payload: f.Payload}); err != nil {
				return 0, nil, err
			}
		case OpPong:
			// Unsolicited pongs are permitted and ignored.
		case OpClose:
			c.writeMu.Lock()
			alreadyClosed := c.closed
			c.closed = true
			c.writeMu.Unlock()
			if !alreadyClosed {
				_ = WriteFrame(c.netConn, c.maybeMask(Frame{FIN: true, Opcode: OpClose, Payload: f.Payload}))
			}
			c.netConn.Close()
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if assembling {
				return 0, nil, fmt.Errorf("wsrpc: new data frame while assembling fragments")
			}
			if f.FIN {
				return f.Opcode, f.Payload, nil
			}
			msgOp = f.Opcode
			buf = append(buf, f.Payload...)
			assembling = true
		case OpContinuation:
			if !assembling {
				return 0, nil, fmt.Errorf("wsrpc: continuation without initial frame")
			}
			buf = append(buf, f.Payload...)
			if len(buf) > MaxFramePayload {
				return 0, nil, ErrFrameTooLarge
			}
			if f.FIN {
				return msgOp, buf, nil
			}
		default:
			return 0, nil, fmt.Errorf("wsrpc: unknown opcode %d", f.Opcode)
		}
	}
}

func (c *Conn) maybeMask(f Frame) Frame {
	if c.client {
		f.Masked = true
		f.MaskKey = c.nextMask()
	}
	return f
}

// ReadJSON reads the next message and unmarshals it into v.
func (c *Conn) ReadJSON(v any) error {
	_, data, err := c.ReadMessage()
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// Close performs the closing handshake from this side and releases the
// underlying connection.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.writeMu.Lock()
		alreadyClosed := c.closed
		c.closed = true
		c.writeMu.Unlock()
		if !alreadyClosed {
			err = WriteFrame(c.netConn, c.maybeMask(Frame{FIN: true, Opcode: OpClose}))
		}
		// Best effort: read the close echo so the peer sees a clean shutdown.
		_ = c.netConn.SetReadDeadline(deadlineSoon())
		for i := 0; i < 8; i++ {
			f, rerr := ReadFrame(c.br)
			if rerr != nil || f.Opcode == OpClose {
				break
			}
		}
		cerr := c.netConn.Close()
		if err == nil && cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			err = cerr
		}
	})
	return err
}

// LocalAddr returns the local network address.
func (c *Conn) LocalAddr() net.Addr { return c.netConn.LocalAddr() }

// RemoteAddr returns the peer's network address.
func (c *Conn) RemoteAddr() net.Addr { return c.netConn.RemoteAddr() }

// deadlineSoon bounds the close-echo wait so Close never hangs on a silent
// peer.
func deadlineSoon() time.Time { return time.Now().Add(250 * time.Millisecond) }
