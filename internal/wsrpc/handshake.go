package wsrpc

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// wsGUID is the magic string from RFC 6455 §1.3 used in the accept hash.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// acceptKey computes Sec-WebSocket-Accept for a client key.
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade hijacks an HTTP request and completes the server side of the
// WebSocket handshake, returning the established connection.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket upgrade requires GET", http.StatusMethodNotAllowed)
		return nil, fmt.Errorf("wsrpc: upgrade with method %s", r.Method)
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "not a websocket upgrade", http.StatusBadRequest)
		return nil, fmt.Errorf("wsrpc: missing upgrade headers")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("wsrpc: version %q", r.Header.Get("Sec-WebSocket-Version"))
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, fmt.Errorf("wsrpc: missing key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "server does not support hijacking", http.StatusInternalServerError)
		return nil, fmt.Errorf("wsrpc: ResponseWriter is not a Hijacker")
	}
	nc, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wsrpc: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsrpc: writing handshake response: %w", err)
	}
	if err := rw.Flush(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsrpc: flushing handshake response: %w", err)
	}
	return newConn(nc, rw.Reader, false, seedFromConn(nc)), nil
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial connects to a ws:// URL and completes the client handshake.
func Dial(rawURL string) (*Conn, error) {
	return DialTimeout(rawURL, 10*time.Second)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(rawURL string, timeout time.Duration) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("wsrpc: parsing url: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("wsrpc: unsupported scheme %q (only ws)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	nc, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, fmt.Errorf("wsrpc: dialing %s: %w", host, err)
	}

	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsrpc: generating key: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])

	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := fmt.Sprintf("GET %s HTTP/1.1\r\n"+
		"Host: %s\r\n"+
		"Upgrade: websocket\r\n"+
		"Connection: Upgrade\r\n"+
		"Sec-WebSocket-Key: %s\r\n"+
		"Sec-WebSocket-Version: 13\r\n\r\n", path, u.Host, key)
	if _, err := nc.Write([]byte(req)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsrpc: writing handshake: %w", err)
	}

	br := bufio.NewReader(nc)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsrpc: reading handshake response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		nc.Close()
		return nil, fmt.Errorf("wsrpc: handshake rejected with status %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		nc.Close()
		return nil, fmt.Errorf("wsrpc: bad accept key %q", got)
	}
	return newConn(nc, br, true, seedFromKey(keyBytes)), nil
}

func seedFromConn(nc net.Conn) uint64 {
	s := uint64(time.Now().UnixNano())
	if addr, ok := nc.RemoteAddr().(*net.TCPAddr); ok {
		s ^= uint64(addr.Port) << 32
	}
	return s
}

func seedFromKey(k [16]byte) uint64 {
	return binary.BigEndian.Uint64(k[:8]) ^ binary.BigEndian.Uint64(k[8:])
}
