package core

import "time"

// ObservedTPS is the raw transaction rate over the observation window as
// seen in the (possibly scaled-down) dataset.
func ObservedTPS(transactions int64, first, last time.Time) float64 {
	window := last.Sub(first)
	if window <= 0 {
		return 0
	}
	return float64(transactions) / window.Seconds()
}

// EstimatedFullScaleTPS corrects the observed rate for the simulation's
// scale divisor: a run at scale S carries 1/S of main-net traffic across
// the same calendar window, so the full-scale estimate is the observed rate
// multiplied by S. With S=1 this is the paper's headline statistic directly
// (EOS ≈ 20 TPS, Tezos ≈ 0.08 TPS, XRP ≈ 19 TPS over the three-month
// window).
func EstimatedFullScaleTPS(transactions int64, first, last time.Time, scale int64) float64 {
	if scale < 1 {
		scale = 1
	}
	return ObservedTPS(transactions, first, last) * float64(scale)
}
