package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rpcserve"
	"repro/internal/stats"
	"repro/internal/xrp"
)

// XRPShard is the mutable aggregate state for a partition of XRP ledgers:
// one goroutine owns it, disjoint shards merge with Merge, and all of its
// statistics are order-independent (see EOSShard). Exchange records from
// the explorer land on the owning aggregator, not on decode shards.
type XRPShard struct {
	Ledgers      int64
	Transactions int64
	Failed       int64

	TxByType   map[string]int64 // Figure 1 rows (successful + failed)
	TxByResult map[string]int64
	Series     *stats.TimeSeries // Figure 3c

	// Per-account activity for Figure 8.
	byAccount map[string]*xrpAccountAgg

	// Payment records for value analysis. Slice order follows ingestion
	// interleaving; every consumer reduces it order-independently.
	payments []xrpPayment

	// Offer bookkeeping for the 0.2 % fulfillment statistic.
	offersCreated  int64
	offersExecuted map[offerRef]bool // executed at placement
	restingOffers  map[offerRef]bool

	exchanges []xrp.Exchange

	FirstLedgerTime, LastLedgerTime time.Time

	// covered is the ledger range this shard aggregated, when known (see
	// EOSShard.covered).
	covered BlockRange
}

// XRPAggregator ingests crawled XRP ledgers plus the explorer's exchange
// records and reproduces the paper's XRP analysis: Figure 1's type
// distribution, Figure 3c's throughput series, Figure 7's value
// decomposition, Figure 8's most-active accounts, Figure 11's IOU rate
// tables and Figure 12's value flows. It is a thin locked wrapper around
// one XRPShard (see EOSAggregator).
type XRPAggregator struct {
	mu sync.Mutex
	XRPShard
}

type offerRef struct {
	Account  string
	Sequence uint32
}

// xrpAssetKey builds an asset key from string fields.
func xrpAssetKey(currency, issuer string) xrp.AssetKey {
	return xrp.AssetKey{Currency: currency, Issuer: xrp.Address(issuer)}
}

type xrpAccountAgg struct {
	Total  int64
	ByType map[string]int64
	// DestTags counts destination tags used in outgoing payments (the
	// paper's Huobi fingerprint: tag 104398 on every payment).
	DestTags map[uint32]int64
}

type xrpPayment struct {
	Time     time.Time
	From, To string
	DestTag  uint32
	Currency string
	Issuer   string
	Value    int64
	Success  bool
	Native   bool
}

// NewXRPAggregator builds an empty aggregator.
func NewXRPAggregator(origin time.Time, bucket time.Duration) *XRPAggregator {
	a := &XRPAggregator{}
	a.XRPShard.init(origin, bucket)
	return a
}

// init allocates a shard's mutable containers.
func (s *XRPShard) init(origin time.Time, bucket time.Duration) {
	s.TxByType = make(map[string]int64)
	s.TxByResult = make(map[string]int64)
	s.Series = stats.NewTimeSeries(origin, bucket)
	s.byAccount = make(map[string]*xrpAccountAgg)
	s.offersExecuted = make(map[offerRef]bool)
	s.restingOffers = make(map[offerRef]bool)
}

// NewShard spawns an empty shard with the aggregator's series geometry,
// exclusively owned by the caller until MergeShard.
func (a *XRPAggregator) NewShard() *XRPShard {
	s := &XRPShard{}
	s.init(a.Series.Origin(), a.Series.Width())
	return s
}

// MergeShard folds a privately-owned shard into the aggregator under one
// lock acquisition and resets it.
func (a *XRPAggregator) MergeShard(s *XRPShard) {
	a.mu.Lock()
	a.XRPShard.merge(s)
	a.mu.Unlock()
}

// NewState spawns a private shard behind the ShardState contract.
func (a *XRPAggregator) NewState() ShardState { return a.NewShard() }

// MergeState folds a compatible ShardState into the aggregator under its
// lock.
func (a *XRPAggregator) MergeState(st ShardState) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.XRPShard.Merge(st)
}

// Chain names the shard's chain for the ShardState contract.
func (s *XRPShard) Chain() string { return "xrp" }

// Window returns the shard's time-series geometry.
func (s *XRPShard) Window() Window {
	return Window{Origin: s.Series.Origin(), Bucket: s.Series.Width()}
}

// Covered returns the ledger range this shard aggregated, when known.
func (s *XRPShard) Covered() BlockRange { return s.covered }

// SetCovered records the ledger range the shard aggregated.
func (s *XRPShard) SetCovered(r BlockRange) { s.covered = r }

// Merge implements ShardState: it validates chain, window and covered-range
// compatibility, then folds src into s and resets it.
func (s *XRPShard) Merge(src ShardState) error {
	typed, cov, err := mergeAsShard[*XRPShard](s, src)
	if err != nil {
		return err
	}
	s.merge(typed)
	s.covered = cov
	return nil
}

// merge folds src (covering disjoint ledgers) into s and resets src.
func (s *XRPShard) merge(src *XRPShard) {
	s.Ledgers += src.Ledgers
	s.Transactions += src.Transactions
	s.Failed += src.Failed
	mergeCounts(s.TxByType, src.TxByType)
	mergeCounts(s.TxByResult, src.TxByResult)
	s.Series.Merge(src.Series)
	for addr, agg := range src.byAccount {
		d := s.byAccount[addr]
		if d == nil {
			s.byAccount[addr] = agg
			continue
		}
		d.Total += agg.Total
		mergeCounts(d.ByType, agg.ByType)
		mergeCounts(d.DestTags, agg.DestTags)
	}
	s.payments = append(s.payments, src.payments...)
	s.offersCreated += src.offersCreated
	for ref := range src.offersExecuted {
		s.offersExecuted[ref] = true
	}
	for ref := range src.restingOffers {
		s.restingOffers[ref] = true
	}
	s.exchanges = append(s.exchanges, src.exchanges...)
	mergeWindow(&s.FirstLedgerTime, &s.LastLedgerTime, src.FirstLedgerTime, src.LastLedgerTime)
	origin, width := src.Series.Origin(), src.Series.Width()
	*src = XRPShard{}
	src.init(origin, width)
}

// IngestLedger folds one crawled ledger into the aggregate. Safe for
// concurrent use.
func (a *XRPAggregator) IngestLedger(l *rpcserve.XRPLedgerJSON) error {
	return a.IngestLedgers([]*rpcserve.XRPLedgerJSON{l})
}

// IngestLedgers folds a batch of ledgers under a single lock acquisition.
// Close times are parsed before the lock is taken; a malformed ledger fails
// the whole batch without ingesting any of it.
func (a *XRPAggregator) IngestLedgers(ls []*rpcserve.XRPLedgerJSON) error {
	times := make([]time.Time, len(ls))
	for i, l := range ls {
		ts, err := time.Parse(time.RFC3339, l.CloseTime)
		if err != nil {
			return err
		}
		times[i] = ts
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, l := range ls {
		a.XRPShard.ingest(l, times[i])
	}
	return nil
}

// xrpBatch asserts and pre-parses an ingest-pool batch (see eosBatch).
func xrpBatch(batch []any) ([]*rpcserve.XRPLedgerJSON, []time.Time, error) {
	ledgers := make([]*rpcserve.XRPLedgerJSON, len(batch))
	times := make([]time.Time, len(batch))
	for i, v := range batch {
		l, ok := v.(*rpcserve.XRPLedgerJSON)
		if !ok {
			return nil, nil, fmt.Errorf("core: xrp batch element %d is %T, not *rpcserve.XRPLedgerJSON", i, v)
		}
		ts, err := time.Parse(time.RFC3339, l.CloseTime)
		if err != nil {
			return nil, nil, err
		}
		ledgers[i], times[i] = l, ts
	}
	return ledgers, times, nil
}

// IngestBatch folds a batch of decoded ledgers into a privately-owned
// shard — no locking; the shard's owner is the only writer.
func (s *XRPShard) IngestBatch(batch []any) error {
	ledgers, times, err := xrpBatch(batch)
	if err != nil {
		return err
	}
	for i, l := range ledgers {
		s.ingest(l, times[i])
	}
	return nil
}

// IngestBatch folds a batch of decoded ledgers into the aggregator, one
// lock acquisition for the whole batch.
func (a *XRPAggregator) IngestBatch(batch []any) error {
	ledgers, times, err := xrpBatch(batch)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, l := range ledgers {
		a.XRPShard.ingest(l, times[i])
	}
	return nil
}

// ingest folds one ledger into the shard; the caller owns the shard.
func (a *XRPShard) ingest(l *rpcserve.XRPLedgerJSON, ts time.Time) {
	a.Ledgers++
	if a.FirstLedgerTime.IsZero() || ts.Before(a.FirstLedgerTime) {
		a.FirstLedgerTime = ts
	}
	if ts.After(a.LastLedgerTime) {
		a.LastLedgerTime = ts
	}
	for i := range l.Transactions {
		tx := &l.Transactions[i]
		a.Transactions++
		a.TxByType[tx.TransactionType]++
		a.TxByResult[tx.Result]++
		success := tx.Result == "tesSUCCESS"
		if !success {
			a.Failed++
			a.Series.Add(ts, "Unsuccessful Tx", 1)
		} else {
			a.Series.Add(ts, xrpSeriesLabel(tx.TransactionType), 1)
		}

		acct := a.byAccount[tx.Account]
		if acct == nil {
			acct = &xrpAccountAgg{ByType: make(map[string]int64), DestTags: make(map[uint32]int64)}
			a.byAccount[tx.Account] = acct
		}
		acct.Total++
		acct.ByType[tx.TransactionType]++

		switch tx.TransactionType {
		case "Payment":
			amt := tx.Amount.ToAmount()
			if tx.DeliveredAmount != nil {
				amt = tx.DeliveredAmount.ToAmount()
			}
			a.payments = append(a.payments, xrpPayment{
				Time: ts, From: tx.Account, To: tx.Destination,
				DestTag:  tx.DestinationTag,
				Currency: amt.Currency, Issuer: string(amt.Issuer),
				Value: amt.Value, Success: success, Native: amt.IsNative(),
			})
			if tx.DestinationTag != 0 {
				acct.DestTags[tx.DestinationTag]++
			}
		case "OfferCreate":
			if success {
				a.offersCreated++
				ref := offerRef{tx.Account, tx.Sequence}
				if tx.Executed {
					a.offersExecuted[ref] = true
				}
				if tx.RestingSequence != 0 {
					a.restingOffers[offerRef{tx.Account, tx.RestingSequence}] = true
				}
			}
		}
	}
}

func xrpSeriesLabel(txType string) string {
	switch txType {
	case "Payment", "OfferCreate":
		return txType
	default:
		return "Others"
	}
}

// AddExchanges feeds the explorer's trade records into the aggregate, both
// for the rate oracle and to attribute maker-side fills to resting offers.
func (a *XRPAggregator) AddExchanges(ex []xrp.Exchange) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.exchanges = append(a.exchanges, ex...)
	for _, e := range ex {
		a.offersExecuted[offerRef{string(e.Maker), e.MakerSequence}] = true
	}
}

// RateToXRP returns the average traded XRP per unit of the asset over all
// observed exchanges (0 when it never traded against XRP).
func (a *XRPAggregator) RateToXRP(key xrp.AssetKey) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rateToXRPLocked(key)
}

func (a *XRPAggregator) rateToXRPLocked(key xrp.AssetKey) float64 {
	if key.Issuer == "" && key.Currency == "XRP" {
		return 1
	}
	xrpKey := xrp.AssetKey{Currency: "XRP"}
	var sum float64
	var n int
	for _, e := range a.exchanges {
		switch {
		case e.Base == key && e.Counter == xrpKey && e.BaseValue > 0:
			sum += float64(e.CounterValue) / float64(e.BaseValue)
			n++
		case e.Base == xrpKey && e.Counter == key && e.CounterValue > 0:
			sum += float64(e.BaseValue) / float64(e.CounterValue)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ValueDecomposition is the paper's Figure 7 Sankey, as fractions of total
// throughput.
type ValueDecomposition struct {
	Total int64

	FailedShare     float64
	SuccessfulShare float64

	// Of total: successful payments split by whether the moved token has a
	// positive XRP rate.
	PaymentsWithValue float64
	PaymentsNoValue   float64

	// Of total: successful offers split by whether they ever executed.
	OffersExchanged  float64
	OffersNoExchange float64

	OthersSuccessful float64

	// EconomicShare is the headline number: payments with value plus
	// exchanged offers (the paper: ~2.3 %).
	EconomicShare float64

	// OfferFulfillmentRate is exchanged offers / successful offers
	// (the paper: ~0.2 %).
	OfferFulfillmentRate float64
	// ValuablePaymentRate is with-value / successful payments
	// (the paper: ~5.5 %, "1 in 19").
	ValuablePaymentRate float64
}

// Decompose computes Figure 7 from the ingested data.
func (a *XRPAggregator) Decompose() ValueDecomposition {
	a.mu.Lock()
	defer a.mu.Unlock()
	var d ValueDecomposition
	d.Total = a.Transactions
	if d.Total == 0 {
		return d
	}
	total := float64(d.Total)
	d.FailedShare = float64(a.Failed) / total
	d.SuccessfulShare = 1 - d.FailedShare

	var payOK, payValue int64
	for _, p := range a.payments {
		if !p.Success {
			continue
		}
		payOK++
		if p.Native || a.rateToXRPLocked(xrp.AssetKey{Currency: p.Currency, Issuer: xrp.Address(p.Issuer)}) > 0 {
			payValue++
		}
	}
	d.PaymentsWithValue = float64(payValue) / total
	d.PaymentsNoValue = float64(payOK-payValue) / total
	if payOK > 0 {
		d.ValuablePaymentRate = float64(payValue) / float64(payOK)
	}

	executed := int64(0)
	for ref := range a.offersExecuted {
		_ = ref
		executed++
	}
	if executed > a.offersCreated {
		executed = a.offersCreated
	}
	d.OffersExchanged = float64(executed) / total
	d.OffersNoExchange = float64(a.offersCreated-executed) / total
	if a.offersCreated > 0 {
		d.OfferFulfillmentRate = float64(executed) / float64(a.offersCreated)
	}

	othersOK := d.SuccessfulShare - (d.PaymentsWithValue + d.PaymentsNoValue + d.OffersExchanged + d.OffersNoExchange)
	if othersOK < 0 {
		othersOK = 0
	}
	d.OthersSuccessful = othersOK
	d.EconomicShare = d.PaymentsWithValue + d.OffersExchanged
	return d
}

// XRPAccountProfile is one Figure 8 row.
type XRPAccountProfile struct {
	Account     string
	Total       int64
	OfferCreate int64
	Payment     int64
	Others      int64
	// OfferShare is OfferCreate/Total; the paper's top accounts all exceed
	// 98 %.
	OfferShare float64
	// DominantDestTag is the most used destination tag (104398 for the
	// Huobi cluster), 0 when none.
	DominantDestTag uint32
}

// TopAccounts returns the k most active accounts (Figure 8).
func (a *XRPAggregator) TopAccounts(k int) []XRPAccountProfile {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]XRPAccountProfile, 0, len(a.byAccount))
	for addr, agg := range a.byAccount {
		p := XRPAccountProfile{
			Account:     addr,
			Total:       agg.Total,
			OfferCreate: agg.ByType["OfferCreate"],
			Payment:     agg.ByType["Payment"],
		}
		p.Others = p.Total - p.OfferCreate - p.Payment
		if p.Total > 0 {
			p.OfferShare = float64(p.OfferCreate) / float64(p.Total)
		}
		var bestN int64
		for tag, n := range agg.DestTags {
			if n > bestN || (n == bestN && tag < p.DominantDestTag) {
				p.DominantDestTag, bestN = tag, n
			}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Account < out[j].Account
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// TrafficShares returns per-account transaction counts, for concentration
// statistics ("the 18 most active accounts are responsible for half of the
// total traffic").
func (a *XRPAggregator) TrafficShares() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, 0, len(a.byAccount))
	for _, agg := range a.byAccount {
		out = append(out, float64(agg.Total))
	}
	return out
}

// IssuerRate is one Figure 11a row: the average XRP rate of an issuer's
// token.
type IssuerRate struct {
	Issuer string
	Rate   float64
	Trades int
}

// IssuerRates returns the per-issuer average XRP rate for a currency code,
// sorted by rate descending (Figure 11a: BTC IOUs ranging from 36,050 XRP
// to 0 depending on the issuer).
func (a *XRPAggregator) IssuerRates(currency string) []IssuerRate {
	a.mu.Lock()
	defer a.mu.Unlock()
	type accum struct {
		sum float64
		n   int
	}
	byIssuer := make(map[string]*accum)
	xrpKey := xrp.AssetKey{Currency: "XRP"}
	for _, e := range a.exchanges {
		var issuer string
		var rate float64
		switch {
		case e.Base.Currency == currency && e.Counter == xrpKey && e.BaseValue > 0:
			issuer = string(e.Base.Issuer)
			rate = float64(e.CounterValue) / float64(e.BaseValue)
		case e.Counter.Currency == currency && e.Base == xrpKey && e.CounterValue > 0:
			issuer = string(e.Counter.Issuer)
			rate = float64(e.BaseValue) / float64(e.CounterValue)
		default:
			continue
		}
		acc := byIssuer[issuer]
		if acc == nil {
			acc = &accum{}
			byIssuer[issuer] = acc
		}
		acc.sum += rate
		acc.n++
	}
	out := make([]IssuerRate, 0, len(byIssuer))
	for issuer, acc := range byIssuer {
		out = append(out, IssuerRate{Issuer: issuer, Rate: acc.sum / float64(acc.n), Trades: acc.n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].Issuer < out[j].Issuer
	})
	return out
}

// RateSeries returns the chronological rates of one asset against XRP
// (Figure 11b: the Myrone BTC IOU collapsing from 30,500 to 0.1).
func (a *XRPAggregator) RateSeries(key xrp.AssetKey) []stats.Row {
	a.mu.Lock()
	defer a.mu.Unlock()
	xrpKey := xrp.AssetKey{Currency: "XRP"}
	var rows []stats.Row
	for _, e := range a.exchanges {
		var rate float64
		switch {
		case e.Base == key && e.Counter == xrpKey && e.BaseValue > 0:
			rate = float64(e.CounterValue) / float64(e.BaseValue)
		case e.Base == xrpKey && e.Counter == key && e.CounterValue > 0:
			rate = float64(e.BaseValue) / float64(e.CounterValue)
		default:
			continue
		}
		rows = append(rows, stats.Row{Start: e.Time, Counts: map[string]int64{"rate_millis": int64(rate * 1000)}})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Start.Before(rows[j].Start) })
	return rows
}

// ClusterFunc resolves an address to a display cluster (exchange username,
// "<name> -- descendant", or the raw address).
type ClusterFunc func(addr string) string

// FlowEdge is one aggregated Figure 12 flow, denominated in XRP.
type FlowEdge struct {
	Name      string
	XRPVolume float64
}

// ValueFlow aggregates successful value-carrying payments into top sender
// clusters, top receiver clusters and per-currency XRP-denominated volumes
// (Figure 12).
type ValueFlow struct {
	TotalXRPVolume float64
	Senders        []FlowEdge
	Receivers      []FlowEdge
	Currencies     []FlowEdge
}

// ValueFlow computes Figure 12 using cluster for account attribution.
func (a *XRPAggregator) ValueFlow(cluster ClusterFunc, topK int) ValueFlow {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cluster == nil {
		cluster = func(addr string) string { return addr }
	}
	senders := make(map[string]float64)
	receivers := make(map[string]float64)
	currencies := make(map[string]float64)
	var total float64
	for _, p := range a.payments {
		if !p.Success {
			continue
		}
		var xrpEq float64
		if p.Native {
			xrpEq = float64(p.Value) / xrp.DropsPerXRP
		} else {
			rate := a.rateToXRPLocked(xrp.AssetKey{Currency: p.Currency, Issuer: xrp.Address(p.Issuer)})
			if rate <= 0 {
				continue // valueless token: excluded from the flow diagram
			}
			xrpEq = float64(p.Value) / xrp.DropsPerXRP * rate
		}
		total += xrpEq
		senders[cluster(p.From)] += xrpEq
		receivers[cluster(p.To)] += xrpEq
		currencies[strings.ToUpper(p.Currency)] += xrpEq
	}
	return ValueFlow{
		TotalXRPVolume: total,
		Senders:        topEdges(senders, topK),
		Receivers:      topEdges(receivers, topK),
		Currencies:     topEdges(currencies, topK),
	}
}

func topEdges(m map[string]float64, k int) []FlowEdge {
	out := make([]FlowEdge, 0, len(m))
	for name, v := range m {
		out = append(out, FlowEdge{Name: name, XRPVolume: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].XRPVolume != out[j].XRPVolume {
			return out[i].XRPVolume > out[j].XRPVolume
		}
		return out[i].Name < out[j].Name
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
