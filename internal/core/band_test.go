package core

import (
	"math"
	"strings"
	"testing"
	"time"
)

func bandSummary(blocks, txs int64) ChainSummary {
	return ChainSummary{
		Chain:        "eos",
		Blocks:       blocks,
		Transactions: txs,
		First:        time.Date(2019, 10, 1, 0, 0, 0, 0, time.UTC),
		Last:         time.Date(2019, 10, 1, 0, 0, int(blocks-1), 0, time.UTC),
		TypeCounts:   map[string]int64{"transfer": txs},
	}
}

func TestBandOfEmptySweep(t *testing.T) {
	b := BandOf(nil)
	if b.Runs != 0 || b.Converged || b.Distinct != 0 || len(b.Metrics) != 0 {
		t.Fatalf("empty sweep band = %+v, want zero band", b)
	}
	// The zero band must still render something diagnosable.
	out := b.Render()
	if !strings.Contains(out, "0 runs") {
		t.Fatalf("zero band render not diagnosable:\n%s", out)
	}
}

func TestBandOfSingleRun(t *testing.T) {
	b := BandOf([]ChainSummary{bandSummary(10, 40)})
	if b.Runs != 1 || !b.Converged || b.Distinct != 1 {
		t.Fatalf("single-run band = %+v, want converged point", b)
	}
	for _, m := range b.Metrics {
		if m.Min != m.Med || m.Med != m.Max {
			t.Fatalf("single-run metric %s not a point: %+v", m.Name, m)
		}
	}
	if out := b.Render(); !strings.Contains(out, "band: point (all 1 runs byte-identical)") {
		t.Fatalf("single-run verdict wrong:\n%s", out)
	}
}

func TestBandOfSpread(t *testing.T) {
	b := BandOf([]ChainSummary{bandSummary(10, 40), bandSummary(12, 50), bandSummary(11, 45)})
	if b.Converged || b.Distinct != 3 || b.Runs != 3 {
		t.Fatalf("diverging sweep band = %+v, want 3-way spread", b)
	}
	blocks := b.Metrics[0]
	if blocks.Name != "blocks" || blocks.Min != 10 || blocks.Med != 11 || blocks.Max != 12 {
		t.Fatalf("blocks metric = %+v, want min 10 / med 11 / max 12", blocks)
	}
	if out := b.Render(); !strings.Contains(out, "band: spread (3 distinct renders across 3 runs)") {
		t.Fatalf("spread verdict wrong:\n%s", out)
	}
}

// TestBandRenderNonFinite pins the rendering of NaN/Inf landing in an
// "integer" metric: the float→int conversion is implementation-defined for
// non-finite values, so Render must fall back to the float form, which
// prints NaN and ±Inf deterministically.
func TestBandRenderNonFinite(t *testing.T) {
	b := SummaryBand{
		Chain: "eos",
		Runs:  2,
		Metrics: []BandMetric{
			{Name: "blocks", Min: 1, Med: 2, Max: 3, Integer: true},
			{Name: "poisoned count", Min: math.NaN(), Med: math.Inf(1), Max: math.Inf(-1), Integer: true},
			{Name: "observed tps", Min: math.NaN(), Med: 1.5, Max: math.Inf(1)},
		},
	}
	out := b.Render()
	if !strings.Contains(out, "min 1 / med 2 / max 3") {
		t.Fatalf("finite integer metric lost integer rendering:\n%s", out)
	}
	if !strings.Contains(out, "min NaN / med +Inf / max -Inf") {
		t.Fatalf("non-finite integer metric not rendered as floats:\n%s", out)
	}
	if !strings.Contains(out, "min NaN / med 1.500 / max +Inf") {
		t.Fatalf("non-finite float metric rendered wrong:\n%s", out)
	}
	// Byte-stable: two renders of the same band must be identical even with
	// non-finite values in play.
	if out != b.Render() {
		t.Fatal("non-finite band render not byte-stable")
	}
}
