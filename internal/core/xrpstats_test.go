package core

import (
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/rpcserve"
	"repro/internal/xrp"
)

func xrpLedger(index int64, ts time.Time, txs ...rpcserve.XRPTxJSON) *rpcserve.XRPLedgerJSON {
	return &rpcserve.XRPLedgerJSON{
		LedgerIndex:  index,
		CloseTime:    ts.Format(time.RFC3339),
		TxCount:      len(txs),
		Transactions: txs,
	}
}

func xrpAmt(currency, issuer string, units int64) *rpcserve.XRPAmountJSON {
	return &rpcserve.XRPAmountJSON{Currency: currency, Issuer: issuer, Value: units * xrp.DropsPerXRP}
}

func payment(from, to string, amt *rpcserve.XRPAmountJSON, result string) rpcserve.XRPTxJSON {
	tx := rpcserve.XRPTxJSON{
		TransactionType: "Payment", Account: from, Destination: to,
		Amount: amt, Result: result,
	}
	if result == "tesSUCCESS" {
		tx.DeliveredAmount = amt
	}
	return tx
}

func TestXRPAggregatorDecompose(t *testing.T) {
	a := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	ts := chain.ObservationStart
	gw := "rGateway"

	// 10 transactions: 1 failed payment, 2 XRP payments (value), 3 IOU
	// payments of a worthless token, 3 offers (1 executed), 1 TrustSet.
	a.IngestLedger(xrpLedger(1, ts,
		payment("rA", "rB", xrpAmt("XRP", "", 100), "tecUNFUNDED_PAYMENT"),
		payment("rA", "rB", xrpAmt("XRP", "", 10), "tesSUCCESS"),
		payment("rB", "rA", xrpAmt("XRP", "", 20), "tesSUCCESS"),
		payment("rC", "rD", xrpAmt("JNK", gw, 500), "tesSUCCESS"),
		payment("rC", "rD", xrpAmt("JNK", gw, 500), "tesSUCCESS"),
		payment("rD", "rC", xrpAmt("JNK", gw, 500), "tesSUCCESS"),
		rpcserve.XRPTxJSON{TransactionType: "OfferCreate", Account: "rE", Sequence: 1,
			Result: "tesSUCCESS", Executed: true},
		rpcserve.XRPTxJSON{TransactionType: "OfferCreate", Account: "rE", Sequence: 2,
			Result: "tesSUCCESS", RestingSequence: 2},
		rpcserve.XRPTxJSON{TransactionType: "OfferCreate", Account: "rF", Sequence: 1,
			Result: "tesSUCCESS", RestingSequence: 1},
		rpcserve.XRPTxJSON{TransactionType: "TrustSet", Account: "rC", Result: "tesSUCCESS"},
	))

	d := a.Decompose()
	if d.Total != 10 {
		t.Fatalf("total = %d", d.Total)
	}
	if d.FailedShare != 0.1 {
		t.Fatalf("failed share = %f", d.FailedShare)
	}
	// 2 of 10 payments carry value (XRP native), 3 are worthless IOUs.
	if d.PaymentsWithValue != 0.2 || d.PaymentsNoValue != 0.3 {
		t.Fatalf("payments: value=%f novalue=%f", d.PaymentsWithValue, d.PaymentsNoValue)
	}
	// 1 executed of 3 offers.
	if d.OffersExchanged != 0.1 || d.OffersNoExchange != 0.2 {
		t.Fatalf("offers: ex=%f no=%f", d.OffersExchanged, d.OffersNoExchange)
	}
	if d.OfferFulfillmentRate < 0.33 || d.OfferFulfillmentRate > 0.34 {
		t.Fatalf("fulfillment = %f", d.OfferFulfillmentRate)
	}
	if d.EconomicShare < 0.299 || d.EconomicShare > 0.301 {
		t.Fatalf("economic share = %f", d.EconomicShare)
	}
	// TrustSet lands in others.
	if d.OthersSuccessful < 0.099 || d.OthersSuccessful > 0.101 {
		t.Fatalf("others = %f", d.OthersSuccessful)
	}
}

func TestXRPMakerFillCountsAsExchanged(t *testing.T) {
	a := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	a.IngestLedger(xrpLedger(1, chain.ObservationStart,
		rpcserve.XRPTxJSON{TransactionType: "OfferCreate", Account: "rMaker", Sequence: 7,
			Result: "tesSUCCESS", RestingSequence: 7},
	))
	d := a.Decompose()
	if d.OffersExchanged != 0 {
		t.Fatal("resting offer counted as exchanged prematurely")
	}
	// Later, the explorer reports a fill of that offer.
	a.AddExchanges([]xrp.Exchange{{
		Time:      chain.ObservationStart.Add(time.Hour),
		Base:      xrp.AssetKey{Currency: "BTC", Issuer: "rGW"},
		Counter:   xrp.AssetKey{Currency: "XRP"},
		BaseValue: 1 * xrp.DropsPerXRP, CounterValue: 30_000 * xrp.DropsPerXRP,
		Maker: "rMaker", MakerSequence: 7,
	}})
	d = a.Decompose()
	if d.OffersExchanged == 0 {
		t.Fatal("maker fill not attributed")
	}
}

func TestXRPRatesFromExchanges(t *testing.T) {
	a := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	btcBitstamp := xrp.AssetKey{Currency: "BTC", Issuer: "rBitstamp"}
	btcSpammer := xrp.AssetKey{Currency: "BTC", Issuer: "rSpammer"}
	xrpKey := xrp.AssetKey{Currency: "XRP"}
	a.AddExchanges([]xrp.Exchange{
		{Time: chain.ObservationStart, Base: btcBitstamp, Counter: xrpKey,
			BaseValue: 1 * xrp.DropsPerXRP, CounterValue: 36_050 * xrp.DropsPerXRP},
		{Time: chain.ObservationStart, Base: btcBitstamp, Counter: xrpKey,
			BaseValue: 2 * xrp.DropsPerXRP, CounterValue: 2 * 35_950 * xrp.DropsPerXRP},
		// Reverse direction quote: buying BTC with XRP.
		{Time: chain.ObservationStart, Base: xrpKey, Counter: btcSpammer,
			BaseValue: 1 * xrp.DropsPerXRP, CounterValue: 1000 * xrp.DropsPerXRP},
	})
	if r := a.RateToXRP(btcBitstamp); r < 35_999 || r > 36_001 {
		t.Fatalf("bitstamp BTC rate = %f", r)
	}
	if r := a.RateToXRP(btcSpammer); r < 0.0009 || r > 0.0011 {
		t.Fatalf("spammer BTC rate = %f", r)
	}
	if r := a.RateToXRP(xrp.AssetKey{Currency: "BTC", Issuer: "rUnknown"}); r != 0 {
		t.Fatalf("untraded issuer rate = %f", r)
	}
	if a.RateToXRP(xrpKey) != 1 {
		t.Fatal("XRP self-rate must be 1")
	}

	rates := a.IssuerRates("BTC")
	if len(rates) != 2 || rates[0].Issuer != "rBitstamp" || rates[1].Issuer != "rSpammer" {
		t.Fatalf("issuer rates: %+v", rates)
	}
}

func TestXRPTopAccountsAndDestTag(t *testing.T) {
	a := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	var txs []rpcserve.XRPTxJSON
	for i := 0; i < 98; i++ {
		txs = append(txs, rpcserve.XRPTxJSON{
			TransactionType: "OfferCreate", Account: "rHuobiBot", Sequence: uint32(i + 1),
			Result: "tesSUCCESS", RestingSequence: uint32(i + 1),
		})
	}
	txs = append(txs, rpcserve.XRPTxJSON{
		TransactionType: "Payment", Account: "rHuobiBot", Destination: "rHuobi",
		DestinationTag: 104398, Amount: xrpAmt("XRP", "", 1), Result: "tesSUCCESS",
		DeliveredAmount: xrpAmt("XRP", "", 1),
	})
	txs = append(txs, payment("rSmall", "rOther", xrpAmt("XRP", "", 1), "tesSUCCESS"))
	a.IngestLedger(xrpLedger(1, chain.ObservationStart, txs...))

	top := a.TopAccounts(1)
	if top[0].Account != "rHuobiBot" || top[0].Total != 99 {
		t.Fatalf("top: %+v", top[0])
	}
	if top[0].OfferShare < 0.98 {
		t.Fatalf("offer share = %f", top[0].OfferShare)
	}
	if top[0].DominantDestTag != 104398 {
		t.Fatalf("dest tag = %d", top[0].DominantDestTag)
	}

	conc := Concentration(a.TrafficShares(), 1)
	if conc.TopKShare < 0.98 {
		t.Fatalf("concentration: %+v", conc)
	}
}

func TestXRPValueFlowClusters(t *testing.T) {
	a := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	gw := "rGW"
	a.AddExchanges([]xrp.Exchange{{
		Time:      chain.ObservationStart,
		Base:      xrp.AssetKey{Currency: "USD", Issuer: xrp.Address(gw)},
		Counter:   xrp.AssetKey{Currency: "XRP"},
		BaseValue: 1 * xrp.DropsPerXRP, CounterValue: 5 * xrp.DropsPerXRP, // 5 XRP/USD
	}})
	a.IngestLedger(xrpLedger(1, chain.ObservationStart,
		payment("rBinance1", "rUser1", xrpAmt("XRP", "", 1000), "tesSUCCESS"),
		payment("rBinance2", "rUser2", xrpAmt("USD", gw, 100), "tesSUCCESS"),     // 500 XRP eq
		payment("rNobody", "rUser3", xrpAmt("JNK", gw, 1_000_000), "tesSUCCESS"), // worthless
	))
	cluster := func(addr string) string {
		if addr == "rBinance1" || addr == "rBinance2" {
			return "Binance"
		}
		return addr
	}
	flow := a.ValueFlow(cluster, 5)
	if flow.TotalXRPVolume < 1499 || flow.TotalXRPVolume > 1501 {
		t.Fatalf("volume = %f", flow.TotalXRPVolume)
	}
	if flow.Senders[0].Name != "Binance" || flow.Senders[0].XRPVolume < 1499 {
		t.Fatalf("senders: %+v", flow.Senders)
	}
	if flow.Currencies[0].Name != "XRP" || len(flow.Currencies) != 2 {
		t.Fatalf("currencies: %+v", flow.Currencies)
	}
}

func TestXRPRateSeriesChronological(t *testing.T) {
	a := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	key := xrp.AssetKey{Currency: "BTC", Issuer: "rLiquidIssuer"}
	xrpKey := xrp.AssetKey{Currency: "XRP"}
	// December trade at 30,500; January trades at 1 and 0.1 (Figure 11b).
	dec := time.Date(2019, 12, 14, 0, 0, 0, 0, time.UTC)
	jan := time.Date(2020, 1, 9, 0, 0, 0, 0, time.UTC)
	a.AddExchanges([]xrp.Exchange{
		{Time: jan, Base: key, Counter: xrpKey, BaseValue: 10 * xrp.DropsPerXRP, CounterValue: 1 * xrp.DropsPerXRP},
		{Time: dec, Base: key, Counter: xrpKey, BaseValue: 1 * xrp.DropsPerXRP, CounterValue: 30_500 * xrp.DropsPerXRP},
	})
	rows := a.RateSeries(key)
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if !rows[0].Start.Equal(dec) {
		t.Fatal("series not chronological")
	}
	if rows[0].Counts["rate_millis"] != 30_500_000 {
		t.Fatalf("first rate: %d", rows[0].Counts["rate_millis"])
	}
	if rows[1].Counts["rate_millis"] != 100 { // 0.1 XRP
		t.Fatalf("collapsed rate: %d", rows[1].Counts["rate_millis"])
	}
}
