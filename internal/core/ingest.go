package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/collect"
	"repro/internal/rpcserve"
	"repro/internal/wire"
)

// Ingestor consumes raw crawled payloads chain-agnostically: one method,
// whatever the chain. Its signature matches collect.Sink, so an Ingestor's
// IngestRaw plugs directly into the callback-style collect.Crawl as well.
type Ingestor interface {
	IngestRaw(num int64, raw []byte) error
}

// Decoder splits ingestion into its two costs so they can be scheduled
// separately: Decode is the CPU-bound, lock-free parse of one wire payload,
// and IngestBatch folds a batch of decoded blocks into the aggregator under
// a single lock acquisition. Implementations exist per chain (EOSDecoder,
// TezosDecoder, XRPDecoder); Decode must be safe for concurrent use.
type Decoder interface {
	Decode(num int64, raw []byte) (any, error)
	IngestBatch(batch []any) error
}

// Shard is one ingest worker's private, lock-free accumulator. IngestBatch
// folds decoded blocks in without any synchronization — exactly one
// goroutine owns a Shard between NewShard and Merge — and Merge folds the
// shard into its parent aggregator (one lock acquisition) and resets it.
// Because every aggregate the shards keep is order-independent, any
// partition of blocks across any number of shards merges to the same
// result (see DESIGN.md "sharded aggregation & merge semantics").
type Shard interface {
	IngestBatch(batch []any) error
	Merge()
}

// ShardedDecoder is implemented by Decoders whose aggregator can hand out
// mergeable shards. IngestStream and IngestArchive give each worker its own
// shard, deleting the per-batch aggregator lock from the hot path: the only
// lock acquisitions left are the per-worker merges at drain.
type ShardedDecoder interface {
	Decoder
	NewShard() Shard
}

// BatchReleaser is implemented by Decoders whose decoded values come from
// a reusable arena (wire.GetEOSBlock and friends). After IngestBatch has
// folded a batch in, the ingest pool hands the values back through
// ReleaseBatch; the aggregators retain only strings (immutable, safe
// forever), never the structs, slices or maps themselves — the contract
// that makes the steady-state ingest path allocation-free.
type BatchReleaser interface {
	ReleaseBatch(batch []any)
}

// NewIngestor adapts a Decoder into an Ingestor that decodes and applies
// each payload immediately (batch of one). Use IngestStream instead when a
// block stream is available — it batches.
func NewIngestor(d Decoder) Ingestor { return decoderIngestor{d} }

type decoderIngestor struct{ d Decoder }

func (i decoderIngestor) IngestRaw(num int64, raw []byte) error {
	blk, err := i.d.Decode(num, raw)
	if err != nil {
		return err
	}
	batch := [1]any{blk}
	if err := i.d.IngestBatch(batch[:]); err != nil {
		return err
	}
	if r, ok := i.d.(BatchReleaser); ok {
		r.ReleaseBatch(batch[:])
	}
	return nil
}

// EOSDecoder drives an EOSAggregator from raw nodeos-style block JSON.
type EOSDecoder struct{ Agg *EOSAggregator }

// Decode parses one raw EOS block into an arena struct through the pooled
// wire codec; ReleaseBatch recycles it after ingestion.
func (d EOSDecoder) Decode(num int64, raw []byte) (any, error) {
	b := wire.GetEOSBlock()
	c := wire.GetCodec()
	err := c.DecodeEOSBlock(raw, b)
	wire.PutCodec(c)
	if err != nil {
		wire.PutEOSBlock(b)
		return nil, fmt.Errorf("core: decoding EOS block: %w", err)
	}
	return b, nil
}

// IngestBatch folds decoded blocks into the aggregator, one lock for the
// whole batch.
func (d EOSDecoder) IngestBatch(batch []any) error { return d.Agg.IngestBatch(batch) }

// ReleaseBatch returns decoded blocks to the wire arena.
func (d EOSDecoder) ReleaseBatch(batch []any) {
	for _, b := range batch {
		wire.PutEOSBlock(b.(*rpcserve.EOSBlockJSON))
	}
}

// NewShard hands one ingest worker a private EOS shard.
func (d EOSDecoder) NewShard() Shard {
	return &stateSink{agg: d.Agg, state: d.Agg.NewState()}
}

// stateMerger is the aggregator half of the generic shard sink: every
// chain's aggregator folds a drained ShardState in under its own lock.
type stateMerger interface {
	MergeState(ShardState) error
}

// stateSink adapts the chain-agnostic ShardState contract to the ingest
// pool's Shard interface — the one sink implementation all three chains
// share, replacing the per-chain copies the decoders used to carry.
type stateSink struct {
	agg   stateMerger
	state ShardState
}

func (s *stateSink) IngestBatch(batch []any) error { return s.state.IngestBatch(batch) }

func (s *stateSink) Merge() {
	// A shard spawned from its own aggregator can never mismatch chain or
	// window, so an error here is a programming bug — same contract as
	// stats.TimeSeries.Merge.
	if err := s.agg.MergeState(s.state); err != nil {
		panic(err)
	}
}

// TezosDecoder drives a TezosAggregator from raw octez-style block JSON.
type TezosDecoder struct{ Agg *TezosAggregator }

// Decode parses one raw Tezos block into an arena struct through the
// pooled wire codec; ReleaseBatch recycles it after ingestion.
func (d TezosDecoder) Decode(num int64, raw []byte) (any, error) {
	b := wire.GetTezosBlock()
	c := wire.GetCodec()
	err := c.DecodeTezosBlock(raw, b)
	wire.PutCodec(c)
	if err != nil {
		wire.PutTezosBlock(b)
		return nil, fmt.Errorf("core: decoding Tezos block: %w", err)
	}
	return b, nil
}

// IngestBatch folds decoded blocks into the aggregator, one lock for the
// whole batch.
func (d TezosDecoder) IngestBatch(batch []any) error { return d.Agg.IngestBatch(batch) }

// ReleaseBatch returns decoded blocks to the wire arena.
func (d TezosDecoder) ReleaseBatch(batch []any) {
	for _, b := range batch {
		wire.PutTezosBlock(b.(*rpcserve.TezosBlockJSON))
	}
}

// NewShard hands one ingest worker a private Tezos shard.
func (d TezosDecoder) NewShard() Shard {
	return &stateSink{agg: d.Agg, state: d.Agg.NewState()}
}

// XRPDecoder drives an XRPAggregator from raw rippled ledger envelopes.
type XRPDecoder struct{ Agg *XRPAggregator }

// Decode parses one raw ledger result envelope into an arena struct
// through the pooled wire codec; ReleaseBatch recycles it after ingestion.
func (d XRPDecoder) Decode(num int64, raw []byte) (any, error) {
	l := wire.GetXRPLedger()
	c := wire.GetCodec()
	err := c.DecodeXRPLedgerResult(raw, l)
	wire.PutCodec(c)
	if err != nil {
		wire.PutXRPLedger(l)
		return nil, fmt.Errorf("core: decoding XRP ledger: %w", err)
	}
	return l, nil
}

// IngestBatch folds decoded ledgers into the aggregator, one lock for the
// whole batch.
func (d XRPDecoder) IngestBatch(batch []any) error { return d.Agg.IngestBatch(batch) }

// ReleaseBatch returns decoded ledgers to the wire arena.
func (d XRPDecoder) ReleaseBatch(batch []any) {
	for _, l := range batch {
		wire.PutXRPLedger(l.(*rpcserve.XRPLedgerJSON))
	}
}

// NewShard hands one ingest worker a private XRP shard.
func (d XRPDecoder) NewShard() Shard {
	return &stateSink{agg: d.Agg, state: d.Agg.NewState()}
}

// IngestConfig sizes the decode/ingest pool behind IngestStream.
type IngestConfig struct {
	// Workers is the number of decode goroutines (default 2). Decoding is
	// the CPU-bound half of ingestion; it runs off the crawl workers so
	// fetch concurrency and decode concurrency scale independently.
	Workers int
	// Batch is how many decoded blocks each worker accumulates before one
	// IngestBatch call — blocks per aggregator lock acquisition
	// (default 16).
	Batch int
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	return c
}

// IngestStream drains a crawl stream through a pool of cfg.Workers decode
// goroutines. When the Decoder is a ShardedDecoder (all three chains), each
// worker folds its blocks into a private shard — zero lock acquisitions on
// the hot path — and the shards merge into the aggregator in worker order
// once the stream drains; otherwise each worker batch-ingests under the
// aggregator lock, cfg.Batch blocks per acquisition. It returns the number
// of blocks ingested and the first decode/ingest error.
//
// Cancellation is driven by the stream itself: when ctx is cancelled the
// crawl workers stop and close the channel, and IngestStream deliberately
// keeps draining until then — a block already handed to the stream counts
// as delivered for checkpointing, so it must be folded in before returning
// or a resumed crawl would skip it without it ever being aggregated. On a
// decode/ingest error, by contrast, the pool stops receiving immediately;
// the caller must then cancel the stream's context to unblock crawl
// workers behind a full buffer, and must not persist a checkpoint taken
// after the error (the pipeline's stage helper and cmd/crawl do both).
func IngestStream(ctx context.Context, blocks <-chan collect.Block, d Decoder, cfg IngestConfig) (int64, error) {
	cfg = cfg.withDefaults()
	var (
		ingested int64
		wg       sync.WaitGroup
		firstErr atomic.Value
		failed   atomic.Bool
	)
	sharded, _ := d.(ShardedDecoder)
	// Per-worker shards, merged below in worker order — the merge order is
	// fixed even though workers finish in any order, so the only scheduling
	// freedom left is which worker ingested which block, and shard merges
	// are insensitive to exactly that.
	shards := make([]Shard, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := Decoder(d)
			if sharded != nil {
				shard := sharded.NewShard()
				shards[w] = shard
				sink = shardDecoder{d, shard}
			}
			releaser, _ := d.(BatchReleaser)
			batch := make([]any, 0, cfg.Batch)
			flush := func() error {
				if len(batch) == 0 {
					return nil
				}
				if err := sink.IngestBatch(batch); err != nil {
					return err
				}
				atomic.AddInt64(&ingested, int64(len(batch)))
				// The aggregator kept only strings; the decoded structs go
				// back to the arena for the next batch.
				if releaser != nil {
					releaser.ReleaseBatch(batch)
				}
				batch = batch[:0]
				return nil
			}
			for blk := range blocks {
				if failed.Load() {
					blk.Release()
					return
				}
				dec, err := d.Decode(blk.Num, blk.Raw)
				// Decoded structs own copies of everything they keep, so
				// the raw payload buffer recycles immediately.
				blk.Release()
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("core: decoding block %d: %w", blk.Num, err))
					failed.Store(true)
					return
				}
				batch = append(batch, dec)
				if len(batch) >= cfg.Batch {
					if err := flush(); err != nil {
						firstErr.CompareAndSwap(nil, err)
						failed.Store(true)
						return
					}
				}
			}
			if err := flush(); err != nil {
				firstErr.CompareAndSwap(nil, err)
				failed.Store(true)
			}
		}(w)
	}
	wg.Wait()
	// Merge even after an error: batches already folded into shards mirror
	// batches the locked path would already have applied, so the partial
	// aggregate looks the same either way.
	for _, s := range shards {
		if s != nil {
			s.Merge()
		}
	}
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return atomic.LoadInt64(&ingested), err
	}
	return atomic.LoadInt64(&ingested), nil
}

// PeriodicMerge wraps a sharded decoder so each ingest worker's private
// shard folds into the parent aggregator every `batches` IngestBatch calls
// instead of only at drain. MergeShard resets the source shard, so the
// worker keeps reusing it; between merges the hot path stays lock-free.
// This is the serving layer's ingest mode: the aggregator continuously
// absorbs epoch-sized deltas that SummarizeEOS and friends can snapshot
// mid-crawl, at a cost of one lock acquisition per worker per `batches`
// batches rather than one per worker per stream. A non-sharded decoder is
// returned unchanged (its locked batch path is already continuous).
func PeriodicMerge(d Decoder, batches int) Decoder {
	sharded, ok := d.(ShardedDecoder)
	if !ok {
		return d
	}
	if batches <= 0 {
		batches = 4
	}
	return periodicDecoder{Decoder: d, sharded: sharded, every: batches}
}

type periodicDecoder struct {
	Decoder
	sharded ShardedDecoder
	every   int
}

func (p periodicDecoder) NewShard() Shard {
	return &periodicShard{inner: p.sharded.NewShard(), every: p.every}
}

// ReleaseBatch delegates to the wrapped decoder's arena recycling (if any);
// the wrapper must keep satisfying BatchReleaser or the ingest pool would
// silently stop recycling decoded structs.
func (p periodicDecoder) ReleaseBatch(batch []any) {
	if r, ok := p.Decoder.(BatchReleaser); ok {
		r.ReleaseBatch(batch)
	}
}

// periodicShard counts batches and merges the wrapped shard into its
// aggregator every `every` batches. Merge resets the inner shard, so it
// remains the worker's accumulator for the next epoch.
type periodicShard struct {
	inner    Shard
	every, n int
}

func (s *periodicShard) IngestBatch(batch []any) error {
	if err := s.inner.IngestBatch(batch); err != nil {
		return err
	}
	if s.n++; s.n >= s.every {
		s.inner.Merge()
		s.n = 0
	}
	return nil
}

func (s *periodicShard) Merge() { s.inner.Merge() }

// shardDecoder routes a worker's IngestBatch calls to its private shard
// while delegating Decode to the shared decoder.
type shardDecoder struct {
	Decoder
	shard Shard
}

func (s shardDecoder) IngestBatch(batch []any) error { return s.shard.IngestBatch(batch) }

// ErrIngest marks errors that came from the decode/ingest side of
// IngestCrawl rather than the crawl itself. Callers that persist
// checkpoints must not do so when errors.Is(err, ErrIngest): the stream
// marked those blocks delivered, but they were never folded into the
// aggregate, so a resume would skip them forever.
var ErrIngest = errors.New("core: ingest failed")

// IngestCrawl is the one canonical wiring of the streaming path: it starts
// collect.Stream, drains it through IngestStream, and handles the
// cancel-on-ingest-error dance that unblocks crawl workers stalled on a
// full buffer. The pipeline stages, cmd/crawl and cmd/chainsim's
// self-check all run on it. The returned handle is valid after return for
// checkpointing (drained — IngestCrawl consumed the whole stream).
func IngestCrawl(ctx context.Context, f collect.BlockFetcher, ccfg collect.CrawlConfig, d Decoder, icfg IngestConfig) (collect.CrawlResult, *collect.CrawlHandle, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	blocks, handle := collect.Stream(ctx, f, ccfg)
	_, ierr := IngestStream(ctx, blocks, d, icfg)
	if ierr != nil {
		cancel() // unblock crawl workers stalled on a full buffer
	}
	res, cerr := handle.Wait()
	if ierr != nil {
		return res, handle, fmt.Errorf("%w: %w", ErrIngest, ierr)
	}
	return res, handle, cerr
}
