// Shard blob I/O: emitting drained shard state to a blob store and the
// coordinator-side load/validate/merge path behind cmd/merge. Shards land
// on the same backends archive segments do (file://, mem://, s3://, plain
// paths — see internal/blobstore), keyed by chain and covered block range.
package core

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/blobstore"
)

// shardSuffix names emitted shard blobs so LoadShards can list a location
// that also holds other objects (e.g. archive segments).
const shardSuffix = ".shard"

// ShardKey names an emitted shard blob from its chain and covered range —
// "eos-0000000001-0000000050.shard". The zero-padded range makes the
// store's sorted listing a from-ordered listing, and makes two shards of
// the same partition overwrite rather than accumulate.
func ShardKey(st ShardState) (string, error) {
	cov := st.Covered()
	if !cov.Known() {
		return "", fmt.Errorf("core: %s shard covers no known block range: SetCovered before emitting", st.Chain())
	}
	return fmt.Sprintf("%s-%010d-%010d%s", st.Chain(), cov.From, cov.To, shardSuffix), nil
}

// EmitShard serializes a drained shard state into the blob store at
// location and returns the key it was stored under. The state must know
// its covered range — an emitted shard without one could not be validated
// against gaps and overlaps at merge time.
func EmitShard(ctx context.Context, location string, st ShardState) (string, error) {
	key, err := ShardKey(st)
	if err != nil {
		return "", err
	}
	store, err := blobstore.Resolve(location)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := st.EncodeTo(&buf); err != nil {
		return "", fmt.Errorf("core: encoding %s shard: %w", st.Chain(), err)
	}
	if err := store.Put(ctx, key, buf.Bytes()); err != nil {
		return "", fmt.Errorf("core: storing shard %s: %w", key, err)
	}
	return key, nil
}

// LoadShards lists location and decodes every *.shard blob in it. Any
// undecodable blob is a loud error — a merge over silently dropped shards
// would render confidently wrong figures.
func LoadShards(ctx context.Context, location string) ([]ShardState, error) {
	store, err := blobstore.Resolve(location)
	if err != nil {
		return nil, err
	}
	keys, err := store.List(ctx, "")
	if err != nil {
		return nil, fmt.Errorf("core: listing shards at %s: %w", store.URL(), err)
	}
	var out []ShardState
	for _, key := range keys {
		if !strings.HasSuffix(key, shardSuffix) {
			continue
		}
		blob, err := store.Get(ctx, key)
		if err != nil {
			return nil, fmt.Errorf("core: fetching shard %s from %s: %w", key, store.URL(), err)
		}
		st, err := DecodeShard(blob)
		if err != nil {
			return nil, fmt.Errorf("core: shard %s at %s: %w", key, store.URL(), err)
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no *%s blobs at %s", shardSuffix, store.URL())
	}
	return out, nil
}

// MergeShards validates a set of emitted shards and folds them into one
// fresh state. All shards must share one chain and one window; every shard
// must know its covered range; sorted by range the shards must tile a
// contiguous block span — any overlap (blocks counted twice) or gap
// (blocks never crawled) is a loud error naming the offending ranges.
// Merge consumes the sources: they are reset as they fold in.
func MergeShards(shards []ShardState) (ShardState, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: no shards to merge")
	}
	first := shards[0]
	for _, st := range shards[1:] {
		if st.Chain() != first.Chain() {
			return nil, fmt.Errorf("core: merging shards of different chains (%s and %s)", first.Chain(), st.Chain())
		}
		if !st.Window().Equal(first.Window()) {
			return nil, fmt.Errorf("core: merging %s shards with mismatched windows (%s vs %s)",
				first.Chain(), first.Window(), st.Window())
		}
	}
	sorted := make([]ShardState, len(shards))
	copy(sorted, shards)
	for _, st := range sorted {
		if !st.Covered().Known() {
			return nil, fmt.Errorf("core: %s shard has no covered block range; refusing to merge blind", st.Chain())
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Covered().From < sorted[j].Covered().From })
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1].Covered(), sorted[i].Covered()
		if cur.From <= prev.To {
			return nil, fmt.Errorf("core: %s shards %s and %s overlap: blocks %d..%d would count twice",
				first.Chain(), prev, cur, cur.From, min64(prev.To, cur.To))
		}
		if cur.From != prev.To+1 {
			return nil, fmt.Errorf("core: gap between %s shards %s and %s: blocks %d..%d were never crawled",
				first.Chain(), prev, cur, prev.To+1, cur.From-1)
		}
	}
	dst, err := NewShardState(first.Chain(), first.Window().Origin, first.Window().Bucket)
	if err != nil {
		return nil, err
	}
	for _, st := range sorted {
		if err := dst.Merge(st); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
