// Shard blob I/O: emitting drained shard state to a blob store and the
// coordinator-side load/validate/merge path behind cmd/merge. Shards land
// on the same backends archive segments do (file://, mem://, s3://, plain
// paths — see internal/blobstore), keyed by chain and covered block range.
package core

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/blobstore"
	"repro/internal/wire"
)

// shardSuffix names emitted shard blobs so LoadShards can list a location
// that also holds other objects (e.g. archive segments).
const shardSuffix = ".shard"

// ShardKey names an emitted shard blob from its chain and covered range —
// "eos-0000000001-0000000050.shard". The zero-padded range makes the
// store's sorted listing a from-ordered listing, and makes two shards of
// the same partition overwrite rather than accumulate.
func ShardKey(st ShardState) (string, error) {
	cov := st.Covered()
	if !cov.Known() {
		return "", fmt.Errorf("core: %s shard covers no known block range: SetCovered before emitting", st.Chain())
	}
	return fmt.Sprintf("%s-%010d-%010d%s", st.Chain(), cov.From, cov.To, shardSuffix), nil
}

// EmitShard serializes a drained shard state into the blob store at
// location and returns the key it was stored under. The state must know
// its covered range — an emitted shard without one could not be validated
// against gaps and overlaps at merge time. The blob is unfenced;
// coordinated workers emit through EmitShardFenced.
func EmitShard(ctx context.Context, location string, st ShardState) (string, error) {
	return EmitShardFenced(ctx, location, st, 0)
}

// EmitShardFenced is EmitShard with a lease fence token stamped into the
// blob's envelope (fence 0 emits the unfenced envelope unchanged). A
// coordinated worker stamps the Attempt of the lease it crawled under, so
// merge-time fence verification can reject the emission of a zombie whose
// lease was reclaimed mid-crawl.
func EmitShardFenced(ctx context.Context, location string, st ShardState, fence uint64) (string, error) {
	key, err := ShardKey(st)
	if err != nil {
		return "", err
	}
	store, err := blobstore.Resolve(location)
	if err != nil {
		return "", err
	}
	blob, err := EncodeShard(st, fence)
	if err != nil {
		return "", err
	}
	if err := store.Put(ctx, key, blob); err != nil {
		return "", fmt.Errorf("core: storing shard %s: %w", key, err)
	}
	return key, nil
}

// EncodeShard serializes a shard state to its sealed blob, stamping the
// given fence token (0 = unfenced, byte-identical to EncodeTo's output).
func EncodeShard(st ShardState, fence uint64) ([]byte, error) {
	var buf bytes.Buffer
	if err := st.EncodeTo(&buf); err != nil {
		return nil, fmt.Errorf("core: encoding %s shard: %w", st.Chain(), err)
	}
	if fence == 0 {
		return buf.Bytes(), nil
	}
	blob, err := wire.SetShardFence(buf.Bytes(), fence)
	if err != nil {
		return nil, fmt.Errorf("core: fencing %s shard: %w", st.Chain(), err)
	}
	return blob, nil
}

// ShardBlob is one decoded shard blob with its provenance: which store it
// came from and under which key. Merge validation errors name the blob,
// not just the range arithmetic, so a coordinator log points straight at
// the object to inspect or delete.
type ShardBlob struct {
	// Store is the resolved store URL the blob was fetched from ("" for
	// in-process states that never touched a store).
	Store string
	// Key is the blob's key in that store.
	Key string
	// Fence is the lease fence token stamped into the blob's envelope
	// (0 for unfenced blobs).
	Fence uint64
	// State is the decoded shard state.
	State ShardState
}

// Ref names the blob for error messages: "KEY at STORE" when provenance
// is known, the covered range otherwise.
func (b ShardBlob) Ref() string {
	if b.Key == "" {
		return b.State.Covered().String()
	}
	if b.Store == "" {
		return b.Key
	}
	return b.Key + " at " + b.Store
}

// TaskName names the coordinator task that produced the blob — the shard
// key minus its suffix, or the same "<chain>-<from>-<to>" string rebuilt
// from the decoded state when the blob never touched a store. It is the
// key fence floors are looked up under during MergeShardBlobsFenced.
func (b ShardBlob) TaskName() string {
	if b.Key != "" {
		return strings.TrimSuffix(b.Key, shardSuffix)
	}
	cov := b.State.Covered()
	if !cov.Known() {
		return ""
	}
	return fmt.Sprintf("%s-%010d-%010d", b.State.Chain(), cov.From, cov.To)
}

// LoadShards lists location and decodes every *.shard blob in it. Any
// undecodable blob is a loud error — a merge over silently dropped shards
// would render confidently wrong figures.
func LoadShards(ctx context.Context, location string) ([]ShardState, error) {
	blobs, err := LoadShardBlobs(ctx, location)
	if err != nil {
		return nil, err
	}
	out := make([]ShardState, len(blobs))
	for i, b := range blobs {
		out[i] = b.State
	}
	return out, nil
}

// LoadShardBlobs is LoadShards with provenance: each decoded state carries
// the store URL and key it came from, which MergeShardBlobs threads into
// its validation errors.
func LoadShardBlobs(ctx context.Context, location string) ([]ShardBlob, error) {
	store, err := blobstore.Resolve(location)
	if err != nil {
		return nil, err
	}
	return LoadShardBlobsFrom(ctx, store)
}

// LoadShardBlobsFrom is LoadShardBlobs over an already-open store — the
// coordinator's path, whose store handle may be wrapped (fault injection)
// or anonymous (in-memory tests) in ways a URL round-trip would lose.
func LoadShardBlobsFrom(ctx context.Context, store blobstore.Store) ([]ShardBlob, error) {
	keys, err := store.List(ctx, "")
	if err != nil {
		return nil, fmt.Errorf("core: listing shards at %s: %w", store.URL(), err)
	}
	var out []ShardBlob
	for _, key := range keys {
		if !strings.HasSuffix(key, shardSuffix) {
			continue
		}
		blob, err := store.Get(ctx, key)
		if err != nil {
			return nil, fmt.Errorf("core: fetching shard %s from %s: %w", key, store.URL(), err)
		}
		fence, err := wire.ShardFence(blob)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt shard %s at %s: %w", key, store.URL(), err)
		}
		st, err := DecodeShard(blob)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt shard %s at %s: %w", key, store.URL(), err)
		}
		out = append(out, ShardBlob{Store: store.URL(), Key: key, Fence: fence, State: st})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no *%s blobs at %s", shardSuffix, store.URL())
	}
	return out, nil
}

// MergeShards validates a set of emitted shards and folds them into one
// fresh state. All shards must share one chain and one window; every shard
// must know its covered range; sorted by range the shards must tile a
// contiguous block span — any overlap (blocks counted twice) or gap
// (blocks never crawled) is a loud error naming the offending ranges.
// Merge consumes the sources: they are reset as they fold in.
func MergeShards(shards []ShardState) (ShardState, error) {
	blobs := make([]ShardBlob, len(shards))
	for i, st := range shards {
		blobs[i] = ShardBlob{State: st}
	}
	merged, _, err := MergeShardBlobs(blobs, false)
	return merged, err
}

// MergeShardBlobs is the provenance-aware, optionally gap-tolerant merge
// behind MergeShards and the coordinator's degraded mode. Chain, window,
// covered-range and overlap validation are identical to MergeShards —
// always loud, with errors naming the offending blobs (store URL + key
// when known). Gaps between sorted shards are an error when allowGaps is
// false; when true they are returned as the missing block ranges and the
// shards that did arrive merge anyway — the partial figures a coordinator
// renders when a slice exhausted its retries, alongside a gap report
// built from the returned ranges. Merge consumes the source states.
func MergeShardBlobs(blobs []ShardBlob, allowGaps bool) (ShardState, []BlockRange, error) {
	return MergeShardBlobsFenced(blobs, allowGaps, nil)
}

// MergeShardBlobsFenced is MergeShardBlobs with lease-fence verification:
// minFence maps a task name (ShardBlob.TaskName) to the newest fence token
// the store's lease lineage records for that task. A blob stamped with an
// older fence — or no fence at all, when a floor exists — was emitted by a
// zombie worker whose lease had already been reclaimed; merging it could
// fold a stale partial crawl over the reclaimer's complete one, so it is
// always a loud error, never a gap. Tasks absent from minFence (and every
// task when minFence is nil) are accepted unchecked: lineage the store no
// longer remembers cannot be enforced.
func MergeShardBlobsFenced(blobs []ShardBlob, allowGaps bool, minFence map[string]uint64) (ShardState, []BlockRange, error) {
	if len(blobs) == 0 {
		return nil, nil, fmt.Errorf("core: no shards to merge")
	}
	for _, b := range blobs {
		if want, ok := minFence[b.TaskName()]; ok && b.Fence < want {
			return nil, nil, fmt.Errorf("core: %s shard %s carries fence %d but the lease lineage requires at least %d: refusing a stale emission from a superseded worker",
				b.State.Chain(), b.Ref(), b.Fence, want)
		}
	}
	first := blobs[0]
	for _, b := range blobs[1:] {
		if b.State.Chain() != first.State.Chain() {
			return nil, nil, fmt.Errorf("core: merging shards of different chains (%s shard %s and %s shard %s)",
				first.State.Chain(), first.Ref(), b.State.Chain(), b.Ref())
		}
		if !b.State.Window().Equal(first.State.Window()) {
			return nil, nil, fmt.Errorf("core: merging %s shards with mismatched windows (%s has %s, %s has %s)",
				first.State.Chain(), first.Ref(), first.State.Window(), b.Ref(), b.State.Window())
		}
	}
	sorted := make([]ShardBlob, len(blobs))
	copy(sorted, blobs)
	for _, b := range sorted {
		if !b.State.Covered().Known() {
			return nil, nil, fmt.Errorf("core: %s shard %s has no covered block range; refusing to merge blind",
				b.State.Chain(), b.Ref())
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].State.Covered().From < sorted[j].State.Covered().From })
	var gaps []BlockRange
	for i := 1; i < len(sorted); i++ {
		pb, cb := sorted[i-1], sorted[i]
		prev, cur := pb.State.Covered(), cb.State.Covered()
		if cur.From <= prev.To {
			return nil, nil, fmt.Errorf("core: %s shards %s %s and %s %s overlap: blocks %d..%d would count twice",
				first.State.Chain(), pb.Ref(), prev, cb.Ref(), cur, cur.From, min64(prev.To, cur.To))
		}
		if cur.From != prev.To+1 {
			if !allowGaps {
				return nil, nil, fmt.Errorf("core: gap between %s shards %s %s and %s %s: blocks %d..%d were never crawled",
					first.State.Chain(), pb.Ref(), prev, cb.Ref(), cur, prev.To+1, cur.From-1)
			}
			gaps = append(gaps, BlockRange{From: prev.To + 1, To: cur.From - 1})
		}
	}
	dst, err := NewShardState(first.State.Chain(), first.State.Window().Origin, first.State.Window().Bucket)
	if err != nil {
		return nil, nil, err
	}
	for _, b := range sorted {
		if err := dst.Merge(b.State); err != nil {
			return nil, nil, fmt.Errorf("core: merging shard %s: %w", b.Ref(), err)
		}
	}
	return dst, gaps, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
