package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/rpcserve"
)

func eosAction(contract, name, actor string, data map[string]string) rpcserve.EOSActionJSON {
	if data == nil {
		data = map[string]string{}
	}
	return rpcserve.EOSActionJSON{
		Account: contract, Name: name,
		Authorization: []map[string]string{{"actor": actor, "permission": "active"}},
		Data:          data,
	}
}

func eosBlock(num int, ts time.Time, txs ...[]rpcserve.EOSActionJSON) *rpcserve.EOSBlockJSON {
	b := &rpcserve.EOSBlockJSON{
		BlockNum:  uint32(num),
		Timestamp: ts.Format("2006-01-02T15:04:05.000"),
		Producer:  "prodablock",
	}
	for i, actions := range txs {
		var t rpcserve.EOSTrxJSON
		t.Status = "executed"
		t.Trx.ID = fmt.Sprintf("tx-%d-%d", num, i)
		t.Trx.Transaction.Actions = actions
		b.Transactions = append(b.Transactions, t)
	}
	return b
}

func transfer(contract, from, to, qty string) rpcserve.EOSActionJSON {
	return eosAction(contract, "transfer", from, map[string]string{
		"from": from, "to": to, "quantity": qty,
	})
}

func TestEOSAggregatorFigure1Classification(t *testing.T) {
	a := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	ts := chain.ObservationStart.Add(time.Hour)
	err := a.IngestBlock(eosBlock(1, ts,
		[]rpcserve.EOSActionJSON{transfer("eosio.token", "alice", "bob", "1.0000 EOS")},
		[]rpcserve.EOSActionJSON{eosAction("eosio", "newaccount", "alice", map[string]string{"name": "carol"})},
		[]rpcserve.EOSActionJSON{eosAction("eosio", "delegatebw", "alice", nil)},
		[]rpcserve.EOSActionJSON{eosAction("betdicetasks", "removetask", "betdicegroup", nil)},
	))
	if err != nil {
		t.Fatal(err)
	}
	if a.Blocks != 1 || a.Transactions != 4 || a.Actions != 4 {
		t.Fatalf("counts: %d blocks %d txs %d actions", a.Blocks, a.Transactions, a.Actions)
	}
	if a.ActionsByCategory[EOSCatTransfer] != 1 ||
		a.ActionsByCategory[EOSCatAccount] != 1 ||
		a.ActionsByCategory[EOSCatOther] != 1 ||
		a.ActionsByCategory[EOSCatOthers] != 1 {
		t.Fatalf("categories: %+v", a.ActionsByCategory)
	}
	// User-contract actions collapse into the "others" Figure 1 row.
	if a.ActionsByName["removetask"] != 0 || a.ActionsByName["others"] != 1 {
		t.Fatalf("figure1 rows: %+v", a.ActionsByName)
	}
	// Series labels by app category.
	if got := a.Series.Total("Betting"); got != 1 {
		t.Fatalf("Betting series = %d", got)
	}
}

func TestEOSAggregatorTopReceiversAndPairs(t *testing.T) {
	a := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	ts := chain.ObservationStart
	for i := 0; i < 10; i++ {
		a.IngestBlock(eosBlock(i+1, ts.Add(time.Duration(i)*time.Minute),
			[]rpcserve.EOSActionJSON{transfer("eosio.token", "mykeypostman", "bob", "1.0000 EOS")},
			[]rpcserve.EOSActionJSON{eosAction("betdicetasks", "removetask", "betdicegroup", nil)},
		))
	}
	a.IngestBlock(eosBlock(11, ts.Add(time.Hour),
		[]rpcserve.EOSActionJSON{eosAction("betdicetasks", "log", "betdicegroup", nil)},
	))

	top := a.TopReceivers(2)
	if len(top) != 2 {
		t.Fatalf("top receivers: %d", len(top))
	}
	if top[0].Contract != "betdicetasks" || top[0].Total != 11 {
		t.Fatalf("top[0]: %+v", top[0])
	}
	if top[0].Actions[0].Name != "removetask" || top[0].Actions[0].Count != 10 {
		t.Fatalf("action breakdown: %+v", top[0].Actions)
	}

	pairs := a.TopSenderPairs(1, 5)
	if pairs[0].Sender != "betdicegroup" || pairs[0].Sent != 11 {
		t.Fatalf("top sender: %+v", pairs[0])
	}
	if pairs[0].Receivers[0].Receiver != "betdicetasks" {
		t.Fatalf("pair receiver: %+v", pairs[0].Receivers)
	}
}

func TestEOSBoomerangDetection(t *testing.T) {
	a := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	// EIDOS mining tx: miner→contract, contract→miner (same qty), EIDOS leg.
	a.IngestBlock(eosBlock(1, chain.ObservationStart,
		[]rpcserve.EOSActionJSON{
			transfer("eosio.token", "miner1", "eidosonecoin", "0.0001 EOS"),
			transfer("eosio.token", "eidosonecoin", "miner1", "0.0001 EOS"),
			transfer("eidosonecoin", "eidosonecoin", "miner1", "12.0000 EIDOS"),
		},
		// Ordinary transfer: not a boomerang.
		[]rpcserve.EOSActionJSON{transfer("eosio.token", "alice", "bob", "5.0000 EOS")},
	))
	if got := a.BoomerangTransactions(); got != 1 {
		t.Fatalf("boomerangs = %d", got)
	}
	if share := a.EIDOSShare(); share < 0.7 || share > 0.8 {
		t.Fatalf("EIDOS share = %f (3 of 4 actions)", share)
	}
	if share := a.TransferShare(); share != 1.0 {
		t.Fatalf("transfer share = %f", share)
	}
}

func TestEOSWashTradeAnalysis(t *testing.T) {
	a := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	var actions [][]rpcserve.EOSActionJSON
	// 90 self-trades by washbot1, 10 honest trades between others.
	for i := 0; i < 90; i++ {
		actions = append(actions, []rpcserve.EOSActionJSON{
			eosAction("whaleextrust", "verifytrade2", "washbot1", map[string]string{
				"buyer": "washbot1", "seller": "washbot1", "quantity": "100.0000 USDT",
			}),
		})
	}
	for i := 0; i < 10; i++ {
		actions = append(actions, []rpcserve.EOSActionJSON{
			eosAction("whaleextrust", "verifytrade2", "honestbuyer", map[string]string{
				"buyer": "honestbuyer", "seller": "honestsell1", "quantity": "3.0000 EOS",
			}),
		})
	}
	a.IngestBlock(eosBlock(1, chain.ObservationStart, actions...))

	rep := AnalyzeWashTrades(a.Trades, 5)
	if rep.TotalTrades != 100 {
		t.Fatalf("trades = %d", rep.TotalTrades)
	}
	if rep.SelfTradeShare != 0.9 {
		t.Fatalf("self-trade share = %f", rep.SelfTradeShare)
	}
	if rep.TopAccounts[0].Account != "washbot1" || rep.TopAccounts[0].SelfTradeShare != 1.0 {
		t.Fatalf("top washer: %+v", rep.TopAccounts[0])
	}
	if rep.Top5Share != 1.0 {
		t.Fatalf("top5 share = %f", rep.Top5Share)
	}
	// washbot1 bought and sold the same amounts: zero net change.
	var wb BalanceChange
	for _, bc := range rep.BalanceChanges {
		if bc.Account == "washbot1" {
			wb = bc
		}
	}
	if wb.Currencies != 1 || wb.UnchangedCurrencies != 1 {
		t.Fatalf("balance change: %+v", wb)
	}
}

func TestTPSEstimate(t *testing.T) {
	first := chain.ObservationStart
	last := first.Add(10 * time.Second)
	if got := ObservedTPS(100, first, last); got != 10 {
		t.Fatalf("observed = %f", got)
	}
	if got := EstimatedFullScaleTPS(100, first, last, 1000); got != 10_000 {
		t.Fatalf("full-scale = %f", got)
	}
	if ObservedTPS(5, last, first) != 0 {
		t.Fatal("inverted window should be 0")
	}
}

func TestEOSVolumeTracking(t *testing.T) {
	a := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	a.IngestBlock(eosBlock(1, chain.ObservationStart,
		[]rpcserve.EOSActionJSON{
			transfer("eosio.token", "miner1", "eidosonecoin", "2.0000 EOS"),
			transfer("eosio.token", "eidosonecoin", "miner1", "2.0000 EOS"),
			transfer("eidosonecoin", "eidosonecoin", "miner1", "10.0000 EIDOS"),
		},
		[]rpcserve.EOSActionJSON{transfer("eosio.token", "alice", "bob", "5.5000 EOS")},
	))
	if got := a.VolumeBySymbol["EOS"]; got != 9.5 {
		t.Fatalf("EOS volume = %f", got)
	}
	if got := a.VolumeBySymbol["EIDOS"]; got != 10 {
		t.Fatalf("EIDOS volume = %f", got)
	}
	// 4 of the 9.5 EOS merely bounced off the airdrop contract.
	if a.BoomerangVolume != 4 {
		t.Fatalf("boomerang volume = %f", a.BoomerangVolume)
	}
}
