package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SummaryBand aggregates one chain's ChainSummary across a sweep
// (cmd/report -parallel): for every figure it records the min, median and
// max observed across the runs, and whether the runs converged — i.e.
// rendered byte-identical figures. A deterministic decoder replaying one
// archive must collapse the band to a point no matter how many shards or
// workers each run used; a spread band is the sweep's signal that some
// aggregate depends on ingestion order and is therefore not trustworthy
// as a "figure".
type SummaryBand struct {
	Chain string
	Runs  int
	// Converged reports that every run's Render was byte-identical.
	Converged bool
	// Distinct counts the distinct rendered figure sections observed.
	Distinct int
	Metrics  []BandMetric
}

// BandMetric is one figure's min/median/max across the sweep.
type BandMetric struct {
	Name          string
	Min, Med, Max float64
	// Integer marks counts, which render without decimals.
	Integer bool
}

// BandOf folds N runs' summaries of the same chain into a band. The runs'
// order is irrelevant — min/median/max are order-free. An empty sweep
// yields the zero band (0 runs, not converged) rather than panicking, so a
// caller that filtered every run out still renders something diagnosable.
func BandOf(runs []ChainSummary) SummaryBand {
	if len(runs) == 0 {
		return SummaryBand{}
	}
	b := SummaryBand{Chain: runs[0].Chain, Runs: len(runs)}

	renders := make(map[string]bool, len(runs))
	for _, r := range runs {
		renders[r.Render()] = true
	}
	b.Distinct = len(renders)
	b.Converged = len(renders) == 1

	add := func(name string, integer bool, value func(ChainSummary) float64) {
		vals := make([]float64, len(runs))
		for i, r := range runs {
			vals[i] = value(r)
		}
		sort.Float64s(vals)
		b.Metrics = append(b.Metrics, BandMetric{
			Name:    name,
			Min:     vals[0],
			Med:     vals[len(vals)/2],
			Max:     vals[len(vals)-1],
			Integer: integer,
		})
	}

	add("blocks", true, func(s ChainSummary) float64 { return float64(s.Blocks) })
	add("txs/ops", true, func(s ChainSummary) float64 { return float64(s.Transactions) })
	add("observed tps", false, func(s ChainSummary) float64 {
		if s.First.IsZero() || s.Blocks == 0 {
			return 0
		}
		return ObservedTPS(s.Transactions, s.First, s.Last)
	})

	// Union of type rows across runs, sorted by name so the band table is
	// stable whatever the per-run orderings were.
	names := make(map[string]bool)
	for _, r := range runs {
		for name := range r.TypeCounts {
			names[name] = true
		}
	}
	typeNames := make([]string, 0, len(names))
	for name := range names {
		typeNames = append(typeNames, name)
	}
	sort.Strings(typeNames)
	for _, name := range typeNames {
		name := name
		add("type "+name, true, func(s ChainSummary) float64 { return float64(s.TypeCounts[name]) })
	}
	return b
}

// Render formats the band as the "=== <chain> convergence band ==="
// section cmd/report -parallel prints after the figures. The final "band:"
// line is the machine-greppable verdict the CI smoke asserts on: "point"
// when every run rendered byte-identical figures, "spread" otherwise.
func (b SummaryBand) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s convergence band (%d runs) ===\n", b.Chain, b.Runs)
	for _, m := range b.Metrics {
		// A NaN/Inf landing in an "integer" metric must not hit the
		// float→int conversion (implementation-defined for non-finite
		// values); fall back to the float form, which prints NaN/±Inf
		// deterministically.
		finite := !math.IsNaN(m.Min) && !math.IsInf(m.Min, 0) &&
			!math.IsNaN(m.Med) && !math.IsInf(m.Med, 0) &&
			!math.IsNaN(m.Max) && !math.IsInf(m.Max, 0)
		if m.Integer && finite {
			fmt.Fprintf(&sb, "%-28s min %d / med %d / max %d\n",
				m.Name+":", int64(m.Min), int64(m.Med), int64(m.Max))
		} else {
			fmt.Fprintf(&sb, "%-28s min %.3f / med %.3f / max %.3f\n",
				m.Name+":", m.Min, m.Med, m.Max)
		}
	}
	if b.Converged {
		fmt.Fprintf(&sb, "band: point (all %d runs byte-identical)\n", b.Runs)
	} else {
		fmt.Fprintf(&sb, "band: spread (%d distinct renders across %d runs)\n", b.Distinct, b.Runs)
	}
	return sb.String()
}
