package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/rpcserve"
)

// The sharded-aggregation determinism property: any partition of a block
// set across any number of shards, ingested in any interleaving and merged
// in any order, must render byte-identical figures to the single-shard
// path. This is the invariant the CI archive job's live-vs-replay-vs-
// parallel diff rests on, checked here at unit scale with adversarial
// randomization for each of the three chains.

func testShardedRenders[B any, A any, S any](
	t *testing.T,
	blocks []B,
	newAgg func() A,
	aggIngest func(A, []B) error,
	newShard func(A) S,
	shardIngest func(S, []B) error,
	mergeShard func(A, S),
	render func(A) string,
) {
	t.Helper()
	// Baseline: every block through the locked single-shard path, in one
	// batch.
	base := newAgg()
	if err := aggIngest(base, blocks); err != nil {
		t.Fatal(err)
	}
	want := render(base)
	if want == "" {
		t.Fatal("baseline render is empty — generator produced no data")
	}

	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 12; iter++ {
		agg := newAgg()
		shardCount := 1 + rng.Intn(7)
		shards := make([]S, shardCount)
		for i := range shards {
			shards[i] = newShard(agg)
		}
		// Random partition of blocks to shards…
		assign := make([][]B, shardCount)
		for _, b := range blocks {
			w := rng.Intn(shardCount)
			assign[w] = append(assign[w], b)
		}
		// …ingested in randomly sized batches, interleaved round-robin
		// across shards so no shard sees its blocks contiguously.
		remaining := shardCount
		cursors := make([]int, shardCount)
		for remaining > 0 {
			w := rng.Intn(shardCount)
			if cursors[w] >= len(assign[w]) {
				continue
			}
			n := 1 + rng.Intn(4)
			if rest := len(assign[w]) - cursors[w]; n > rest {
				n = rest
			}
			if err := shardIngest(shards[w], assign[w][cursors[w]:cursors[w]+n]); err != nil {
				t.Fatal(err)
			}
			cursors[w] += n
			if cursors[w] >= len(assign[w]) {
				remaining--
			}
		}
		// Merge in random order.
		for _, w := range rng.Perm(shardCount) {
			mergeShard(agg, shards[w])
		}
		if got := render(agg); got != want {
			t.Fatalf("iter %d (%d shards): sharded render diverged\n--- single-shard ---\n%s\n--- sharded ---\n%s",
				iter, shardCount, want, got)
		}
	}
}

// asBatch converts a typed block slice into the []any batch shape the
// ShardState.IngestBatch contract takes.
func asBatch[B any](bs []B) []any {
	batch := make([]any, len(bs))
	for i, b := range bs {
		batch[i] = b
	}
	return batch
}

// genEOSBlocks fabricates EOS blocks exercising every aggregate: token and
// non-token transfers, EIDOS boomerangs, DEX trades, account and system
// actions, several contracts, senders and time buckets.
func genEOSBlocks(n int) []*rpcserve.EOSBlockJSON {
	rng := rand.New(rand.NewSource(7))
	contracts := []string{"eosio.token", "eidosonecoin", "betdicetasks", "whaleextrust", "randomapp111"}
	actors := []string{"alice", "bob", "carol", "dave", "whale1", "whale2"}
	blocks := make([]*rpcserve.EOSBlockJSON, n)
	for i := range blocks {
		b := &rpcserve.EOSBlockJSON{
			BlockNum:  uint32(i + 1),
			Timestamp: chain.ObservationStart.Add(time.Duration(i) * 4 * time.Hour).Format("2006-01-02T15:04:05.000"),
			Producer:  "eosio",
		}
		for t := 0; t < 1+rng.Intn(3); t++ {
			var trx rpcserve.EOSTrxJSON
			trx.Status = "executed"
			from, to := actors[rng.Intn(len(actors))], actors[rng.Intn(len(actors))]
			qty := fmt.Sprintf("%d.%04d EOS", 1+rng.Intn(50), rng.Intn(10000))
			switch rng.Intn(6) {
			case 0: // boomerang pair through the EIDOS contract
				trx.Trx.Transaction.Actions = []rpcserve.EOSActionJSON{
					{Account: "eosio.token", Name: "transfer",
						Authorization: []map[string]string{{"actor": from}},
						Data:          map[string]string{"from": from, "to": "eidosonecoin", "quantity": qty}},
					{Account: "eidosonecoin", Name: "transfer",
						Authorization: []map[string]string{{"actor": "eidosonecoin"}},
						Data:          map[string]string{"from": "eidosonecoin", "to": from, "quantity": qty}},
				}
			case 1: // DEX settlement (wash-trade input)
				buyer := actors[rng.Intn(2)+4] // whale1/whale2 dominate
				seller := buyer
				if rng.Intn(3) == 0 {
					seller = actors[rng.Intn(len(actors))]
				}
				trx.Trx.Transaction.Actions = []rpcserve.EOSActionJSON{{
					Account: "whaleextrust", Name: "verifytrade2",
					Authorization: []map[string]string{{"actor": buyer}},
					Data: map[string]string{
						"buyer": buyer, "seller": seller,
						"quantity": qty,
					}}}
			case 2: // account action
				trx.Trx.Transaction.Actions = []rpcserve.EOSActionJSON{{
					Account: "eosio", Name: "newaccount",
					Authorization: []map[string]string{{"actor": from}},
					Data:          map[string]string{"creator": from}}}
			case 3: // other system action
				trx.Trx.Transaction.Actions = []rpcserve.EOSActionJSON{{
					Account: "eosio", Name: "delegatebw",
					Authorization: []map[string]string{{"actor": from}},
					Data:          map[string]string{"from": from}}}
			default: // plain transfer through a random contract
				trx.Trx.Transaction.Actions = []rpcserve.EOSActionJSON{{
					Account: contracts[rng.Intn(len(contracts))], Name: "transfer",
					Authorization: []map[string]string{{"actor": from}},
					Data:          map[string]string{"from": from, "to": to, "quantity": qty}}}
			}
			b.Transactions = append(b.Transactions, trx)
		}
		blocks[i] = b
	}
	return blocks
}

func TestShardedEOSRenderByteIdentical(t *testing.T) {
	testShardedRenders(t, genEOSBlocks(64),
		func() *EOSAggregator { return NewEOSAggregator(chain.ObservationStart, 6*time.Hour) },
		(*EOSAggregator).IngestBlocks,
		(*EOSAggregator).NewShard,
		func(s *EOSShard, bs []*rpcserve.EOSBlockJSON) error { return s.IngestBatch(asBatch(bs)) },
		(*EOSAggregator).MergeShard,
		func(a *EOSAggregator) string { return SummarizeEOS(a).Render() },
	)
}

// genTezosBlocks fabricates Tezos blocks with endorsements, transactions,
// governance votes and rarer kinds.
func genTezosBlocks(n int) []*rpcserve.TezosBlockJSON {
	rng := rand.New(rand.NewSource(11))
	srcs := []string{"tz1alice", "tz1bob", "tz1carol", "tz1whale"}
	blocks := make([]*rpcserve.TezosBlockJSON, n)
	for i := range blocks {
		b := &rpcserve.TezosBlockJSON{
			Level:     int64(i + 1),
			Timestamp: chain.ObservationStart.Add(time.Duration(i) * 3 * time.Hour).Format(time.RFC3339),
			Baker:     "tz1baker",
		}
		for o := 0; o < 2+rng.Intn(4); o++ {
			src := srcs[rng.Intn(len(srcs))]
			switch rng.Intn(5) {
			case 0, 1:
				b.Operations = append(b.Operations, rpcserve.TezosOperationJSON{
					Kind: "endorsement", Source: src, Level: int64(i), SlotCount: 1 + rng.Intn(4)})
			case 2:
				b.Operations = append(b.Operations, rpcserve.TezosOperationJSON{
					Kind: "transaction", Source: src,
					Destination: srcs[rng.Intn(len(srcs))], Amount: int64(rng.Intn(100000))})
			case 3:
				b.Operations = append(b.Operations, rpcserve.TezosOperationJSON{
					Kind: "ballot", Source: src, Proposal: "PsBabyM1", Ballot: []string{"yay", "nay", "pass"}[rng.Intn(3)],
					Rolls: int64(1 + rng.Intn(500))})
			default:
				b.Operations = append(b.Operations, rpcserve.TezosOperationJSON{
					Kind: "seed_nonce_revelation", Source: src})
			}
		}
		blocks[i] = b
	}
	return blocks
}

func TestShardedTezosRenderByteIdentical(t *testing.T) {
	testShardedRenders(t, genTezosBlocks(64),
		func() *TezosAggregator { return NewTezosAggregator(chain.ObservationStart, 6*time.Hour) },
		(*TezosAggregator).IngestBlocks,
		(*TezosAggregator).NewShard,
		func(s *TezosShard, bs []*rpcserve.TezosBlockJSON) error { return s.IngestBatch(asBatch(bs)) },
		(*TezosAggregator).MergeShard,
		func(a *TezosAggregator) string { return SummarizeTezos(a).Render() },
	)
}

// genXRPLedgers fabricates ledgers with native and IOU payments, failures,
// offers (executed and resting) and destination tags.
func genXRPLedgers(n int) []*rpcserve.XRPLedgerJSON {
	rng := rand.New(rand.NewSource(13))
	accts := []string{"rAlice", "rBob", "rHuobi", "rMill"}
	ledgers := make([]*rpcserve.XRPLedgerJSON, n)
	for i := range ledgers {
		l := &rpcserve.XRPLedgerJSON{
			LedgerIndex: int64(i + 1),
			CloseTime:   chain.ObservationStart.Add(time.Duration(i) * 2 * time.Hour).Format(time.RFC3339),
		}
		for t := 0; t < 2+rng.Intn(4); t++ {
			acct := accts[rng.Intn(len(accts))]
			result := "tesSUCCESS"
			if rng.Intn(4) == 0 {
				result = "tecPATH_DRY"
			}
			switch rng.Intn(3) {
			case 0, 1:
				tx := rpcserve.XRPTxJSON{
					Hash: fmt.Sprintf("TX%06d%02d", i, t), TransactionType: "Payment",
					Account: acct, Destination: accts[rng.Intn(len(accts))],
					Result: result, Sequence: uint32(t + 1),
				}
				if acct == "rHuobi" {
					tx.DestinationTag = 104398
				}
				if rng.Intn(3) == 0 {
					tx.Amount = &rpcserve.XRPAmountJSON{Currency: "BTC", Issuer: "rGateway", Value: int64(1 + rng.Intn(1000))}
				} else {
					tx.Amount = &rpcserve.XRPAmountJSON{Currency: "XRP", Value: int64(1 + rng.Intn(5_000_000))}
				}
				l.Transactions = append(l.Transactions, tx)
			case 2:
				l.Transactions = append(l.Transactions, rpcserve.XRPTxJSON{
					Hash: fmt.Sprintf("OF%06d%02d", i, t), TransactionType: "OfferCreate",
					Account: acct, Result: result, Sequence: uint32(100 + t),
					Executed:        rng.Intn(4) == 0,
					RestingSequence: uint32(rng.Intn(2) * (50 + t)),
				})
			}
		}
		l.TxCount = len(l.Transactions)
		ledgers[i] = l
	}
	return ledgers
}

func TestShardedXRPRenderByteIdentical(t *testing.T) {
	testShardedRenders(t, genXRPLedgers(64),
		func() *XRPAggregator { return NewXRPAggregator(chain.ObservationStart, 6*time.Hour) },
		(*XRPAggregator).IngestLedgers,
		(*XRPAggregator).NewShard,
		func(s *XRPShard, ls []*rpcserve.XRPLedgerJSON) error { return s.IngestBatch(asBatch(ls)) },
		(*XRPAggregator).MergeShard,
		func(a *XRPAggregator) string { return SummarizeXRP(a).Render() },
	)
}
