package core

import (
	"sort"
	"time"
)

// SpamCluster is a group of accounts activated by a common parent whose
// payments stay almost entirely within the group — the signature of the
// rpJZ5WyotdphojwMLxCr2prhULvG3Voe3X incident (§4.3): one account activated
// 5,020 children within a week and had them exchange meaningless payments,
// burning real fees to inflate throughput.
type SpamCluster struct {
	Parent string
	// Members activated by the parent (including indirect activations is
	// left to the caller's clustering).
	Members int
	// InternalPayments are payments between members (or member↔parent).
	InternalPayments int64
	// ExternalPayments leave or enter the cluster.
	ExternalPayments int64
	// InternalShare is InternalPayments / (Internal+External).
	InternalShare float64
	// ActivationSpan is the time between the first and last member
	// activation the detector saw (the incident: 5,020 in one week).
	ActivationSpan time.Duration
	// ZeroValueShare is the fraction of internal payments whose token has
	// no positive XRP rate.
	ZeroValueShare float64
}

// SpamClusterDetector accumulates activation parentage and payment flows,
// then reports clusters that look like self-contained payment mills.
type SpamClusterDetector struct {
	// MinMembers is the minimum cluster size to report (default 10).
	MinMembers int
	// MinInternalShare is the minimum internal-payment share (default 0.8).
	MinInternalShare float64

	parentOf  map[string]string
	activated map[string]time.Time
}

// NewSpamClusterDetector builds a detector.
func NewSpamClusterDetector() *SpamClusterDetector {
	return &SpamClusterDetector{
		MinMembers:       10,
		MinInternalShare: 0.8,
		parentOf:         make(map[string]string),
		activated:        make(map[string]time.Time),
	}
}

// ObserveActivation records that child was activated by parent at ts.
func (d *SpamClusterDetector) ObserveActivation(parent, child string, ts time.Time) {
	d.parentOf[child] = parent
	d.activated[child] = ts
}

// Merge folds another detector's observations in, deterministically: when
// both saw an activation for the same child, the earlier one wins (an
// account is activated once; later sightings are replays), with the
// lexicographically smaller parent breaking exact-time ties so the merged
// state never depends on merge order.
func (d *SpamClusterDetector) Merge(other *SpamClusterDetector) {
	for child, parent := range other.parentOf {
		ts := other.activated[child]
		cur, seen := d.activated[child]
		if !seen || ts.Before(cur) || (ts.Equal(cur) && parent < d.parentOf[child]) {
			d.parentOf[child] = parent
			d.activated[child] = ts
		}
	}
}

// Detect analyses the aggregator's payments and returns clusters sorted by
// member count (largest first).
func (d *SpamClusterDetector) Detect(payments []XRPPaymentView) []SpamCluster {
	clusterOf := func(acct string) string { return d.parentOf[acct] }

	type accum struct {
		internal, external int64
		zeroValue          int64
	}
	stats := make(map[string]*accum)
	get := func(parent string) *accum {
		a := stats[parent]
		if a == nil {
			a = &accum{}
			stats[parent] = a
		}
		return a
	}
	for _, p := range payments {
		fromCluster := clusterOf(p.From)
		toCluster := clusterOf(p.To)
		// Member → member of the same cluster, or flows touching the hub
		// itself.
		switch {
		case fromCluster != "" && fromCluster == toCluster:
			a := get(fromCluster)
			a.internal++
			if !p.HasValue {
				a.zeroValue++
			}
		case fromCluster != "" && p.To == fromCluster:
			a := get(fromCluster)
			a.internal++
			if !p.HasValue {
				a.zeroValue++
			}
		case toCluster != "" && p.From == toCluster:
			a := get(toCluster)
			a.internal++
			if !p.HasValue {
				a.zeroValue++
			}
		default:
			if fromCluster != "" {
				get(fromCluster).external++
			}
			if toCluster != "" && toCluster != fromCluster {
				get(toCluster).external++
			}
		}
	}

	members := make(map[string]int)
	firstAct := make(map[string]time.Time)
	lastAct := make(map[string]time.Time)
	for child, parent := range d.parentOf {
		members[parent]++
		ts := d.activated[child]
		if f, ok := firstAct[parent]; !ok || ts.Before(f) {
			firstAct[parent] = ts
		}
		if l, ok := lastAct[parent]; !ok || ts.After(l) {
			lastAct[parent] = ts
		}
	}

	var out []SpamCluster
	for parent, n := range members {
		if n < d.MinMembers {
			continue
		}
		a := stats[parent]
		if a == nil || a.internal == 0 {
			continue
		}
		total := a.internal + a.external
		share := float64(a.internal) / float64(total)
		if share < d.MinInternalShare {
			continue
		}
		c := SpamCluster{
			Parent:           parent,
			Members:          n,
			InternalPayments: a.internal,
			ExternalPayments: a.external,
			InternalShare:    share,
			ActivationSpan:   lastAct[parent].Sub(firstAct[parent]),
		}
		if a.internal > 0 {
			c.ZeroValueShare = float64(a.zeroValue) / float64(a.internal)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Members != out[j].Members {
			return out[i].Members > out[j].Members
		}
		return out[i].Parent < out[j].Parent
	})
	return out
}

// XRPPaymentView is the minimal payment projection the detector needs.
type XRPPaymentView struct {
	From, To string
	HasValue bool
}

// PaymentViews projects the aggregator's successful payments for the spam
// detector, valuing tokens through the observed exchange rates.
func (a *XRPAggregator) PaymentViews() []XRPPaymentView {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]XRPPaymentView, 0, len(a.payments))
	for _, p := range a.payments {
		if !p.Success {
			continue
		}
		hasValue := p.Native
		if !hasValue {
			hasValue = a.rateToXRPLocked(xrpAssetKey(p.Currency, p.Issuer)) > 0
		}
		out = append(out, XRPPaymentView{From: p.From, To: p.To, HasValue: hasValue})
	}
	return out
}
