package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// ChainSummary is one chain's deterministic aggregate footprint: every
// number in it derives from order-independent aggregates, so a live crawl
// and an archive replay over the same blocks render byte-identical text —
// the property the CI archive job diffs to prove replay determinism.
type ChainSummary struct {
	Chain        string
	Blocks       int64
	Transactions int64
	First, Last  time.Time
	// TypeCounts is the Figure 1-style transaction/operation/action type
	// distribution.
	TypeCounts map[string]int64
	// BucketTotals are the per-bucket throughput totals behind the
	// percentile lines.
	BucketTotals []int64
	// Wash carries the §4.1 wash-trade analysis (EOS only).
	Wash *WashTradeReport
	// Notes are extra chain-specific deterministic lines.
	Notes []string
}

// StatsKit bundles one chain's aggregator behind the chain-agnostic
// surfaces the CLIs need: a Decoder for the ingest pool, the running
// transaction count for progress lines, and the deterministic figures
// summary. cmd/crawl builds one for its live crawl and cmd/report builds
// one per archive it replays — both ends of the archive determinism check
// therefore run the same code.
type StatsKit struct {
	Chain     string
	Decoder   Decoder
	Txs       func() int64
	Summarize func() ChainSummary
}

// NewStatsKit builds the aggregator stack for a chain name as it appears
// in an archive manifest or a -chain flag.
func NewStatsKit(chain string, origin time.Time, bucket time.Duration) (StatsKit, error) {
	switch chain {
	case "eos":
		agg := NewEOSAggregator(origin, bucket)
		return StatsKit{
			Chain:     chain,
			Decoder:   EOSDecoder{Agg: agg},
			Txs:       func() int64 { return agg.Transactions },
			Summarize: func() ChainSummary { return SummarizeEOS(agg) },
		}, nil
	case "tezos":
		agg := NewTezosAggregator(origin, bucket)
		return StatsKit{
			Chain:     chain,
			Decoder:   TezosDecoder{Agg: agg},
			Txs:       func() int64 { return agg.Operations },
			Summarize: func() ChainSummary { return SummarizeTezos(agg) },
		}, nil
	case "xrp":
		agg := NewXRPAggregator(origin, bucket)
		return StatsKit{
			Chain:     chain,
			Decoder:   XRPDecoder{Agg: agg},
			Txs:       func() int64 { return agg.Transactions },
			Summarize: func() ChainSummary { return SummarizeXRP(agg) },
		}, nil
	}
	return StatsKit{}, fmt.Errorf("core: unknown chain %q", chain)
}

// SummarizeEOS captures an EOS aggregator's deterministic footprint.
func SummarizeEOS(a *EOSAggregator) ChainSummary {
	wash := AnalyzeWashTrades(a.Trades, 5)
	s := ChainSummary{
		Chain:        "eos",
		Blocks:       a.Blocks,
		Transactions: a.Transactions,
		First:        a.FirstBlockTime,
		Last:         a.LastBlockTime,
		TypeCounts:   a.ActionsByName,
		BucketTotals: stats.TotalValues(a.Series),
		Wash:         &wash,
	}
	s.Notes = append(s.Notes,
		fmt.Sprintf("boomerang txs:   %d", a.BoomerangTransactions()),
		fmt.Sprintf("eidos share:     %.2f%% of actions", 100*a.EIDOSShare()))
	return s
}

// SummarizeTezos captures a Tezos aggregator's deterministic footprint.
func SummarizeTezos(a *TezosAggregator) ChainSummary {
	return ChainSummary{
		Chain:        "tezos",
		Blocks:       a.Blocks,
		Transactions: a.Operations,
		First:        a.FirstBlockTime,
		Last:         a.LastBlockTime,
		TypeCounts:   a.OpsByKind,
		BucketTotals: stats.TotalValues(a.Series),
		Notes: []string{
			fmt.Sprintf("endorsements:    %.2f%% of ops", 100*a.EndorsementShare()),
		},
	}
}

// SummarizeXRP captures an XRP aggregator's deterministic footprint.
func SummarizeXRP(a *XRPAggregator) ChainSummary {
	var failedShare float64
	if a.Transactions > 0 {
		failedShare = float64(a.Failed) / float64(a.Transactions)
	}
	return ChainSummary{
		Chain:        "xrp",
		Blocks:       a.Ledgers,
		Transactions: a.Transactions,
		First:        a.FirstLedgerTime,
		Last:         a.LastLedgerTime,
		TypeCounts:   a.TxByType,
		BucketTotals: stats.TotalValues(a.Series),
		Notes: []string{
			fmt.Sprintf("failed txs:      %d (%.2f%%)", a.Failed, 100*failedShare),
		},
	}
}

// Render formats the summary as the stable "figures" section cmd/crawl
// prints after a live crawl and cmd/report -replay prints after an offline
// replay. Everything is sorted and derived from order-independent state,
// so the text depends only on the set of ingested blocks.
func (s ChainSummary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s figures ---\n", s.Chain)
	fmt.Fprintf(&sb, "blocks:          %d\n", s.Blocks)
	fmt.Fprintf(&sb, "txs/ops:         %d\n", s.Transactions)
	if s.First.IsZero() || s.Blocks == 0 {
		sb.WriteString("window:          (empty)\n")
	} else {
		fmt.Fprintf(&sb, "window:          %s .. %s\n",
			s.First.UTC().Format(time.RFC3339), s.Last.UTC().Format(time.RFC3339))
		fmt.Fprintf(&sb, "observed tps:    %.3f\n", ObservedTPS(s.Transactions, s.First, s.Last))
	}
	if len(s.BucketTotals) > 0 {
		vals := make([]float64, len(s.BucketTotals))
		for i, v := range s.BucketTotals {
			vals[i] = float64(v)
		}
		// One sort serves the whole quantile grid.
		sel := stats.GetSelector()
		sel.Load(vals)
		fmt.Fprintf(&sb, "bucket p50/p90/p99: %.1f / %.1f / %.1f\n",
			sel.Percentile(50), sel.Percentile(90), sel.Percentile(99))
		stats.PutSelector(sel)
	}
	if len(s.TypeCounts) > 0 {
		var total int64
		names := make([]string, 0, len(s.TypeCounts))
		for name, n := range s.TypeCounts {
			names = append(names, name)
			total += n
		}
		sort.Slice(names, func(i, j int) bool {
			if s.TypeCounts[names[i]] != s.TypeCounts[names[j]] {
				return s.TypeCounts[names[i]] > s.TypeCounts[names[j]]
			}
			return names[i] < names[j]
		})
		sb.WriteString("types:\n")
		for _, name := range names {
			fmt.Fprintf(&sb, "  %-22s %10d  %5.1f%%\n",
				name, s.TypeCounts[name], 100*float64(s.TypeCounts[name])/float64(total))
		}
	}
	if s.Wash != nil {
		fmt.Fprintf(&sb, "wash trades:     %d settled, self-trade %.1f%%, top-5 involvement %.1f%%\n",
			s.Wash.TotalTrades, 100*s.Wash.SelfTradeShare, 100*s.Wash.Top5Share)
		for _, w := range s.Wash.TopAccounts {
			fmt.Fprintf(&sb, "  %-22s trades %7d  self %5.1f%%\n", w.Account, w.Trades, 100*w.SelfTradeShare)
		}
	}
	for _, note := range s.Notes {
		sb.WriteString(note)
		sb.WriteByte('\n')
	}
	return sb.String()
}
