package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// ChainSummary is one chain's deterministic aggregate footprint: every
// number in it derives from order-independent aggregates, so a live crawl
// and an archive replay over the same blocks render byte-identical text —
// the property the CI archive job diffs to prove replay determinism.
type ChainSummary struct {
	Chain        string
	Blocks       int64
	Transactions int64
	First, Last  time.Time
	// TypeCounts is the Figure 1-style transaction/operation/action type
	// distribution.
	TypeCounts map[string]int64
	// BucketTotals are the per-bucket throughput totals behind the
	// percentile lines.
	BucketTotals []int64
	// Wash carries the §4.1 wash-trade analysis (EOS only).
	Wash *WashTradeReport
	// Notes are extra chain-specific deterministic lines.
	Notes []string
}

// StatsKit bundles one chain's aggregator behind the chain-agnostic
// surfaces the CLIs need: a Decoder for the ingest pool, the running
// transaction count for progress lines, and the deterministic figures
// summary. cmd/crawl builds one for its live crawl and cmd/report builds
// one per archive it replays — both ends of the archive determinism check
// therefore run the same code.
type StatsKit struct {
	Chain     string
	Decoder   Decoder
	Txs       func() int64
	Summarize func() ChainSummary
	// State exposes the aggregator's accumulated shard state behind the
	// ShardState contract — what a distributed crawl serializes with
	// -emit-shard after the stream drains. The caller must be done
	// ingesting: the returned state is the live aggregate, not a copy.
	State func() ShardState
}

// NewStatsKit builds the aggregator stack for a chain name as it appears
// in an archive manifest or a -chain flag.
func NewStatsKit(chain string, origin time.Time, bucket time.Duration) (StatsKit, error) {
	switch chain {
	case "eos":
		agg := NewEOSAggregator(origin, bucket)
		return StatsKit{
			Chain:     chain,
			Decoder:   EOSDecoder{Agg: agg},
			Txs:       func() int64 { return agg.Transactions },
			Summarize: func() ChainSummary { return SummarizeEOS(agg) },
			State:     func() ShardState { return &agg.EOSShard },
		}, nil
	case "tezos":
		agg := NewTezosAggregator(origin, bucket)
		return StatsKit{
			Chain:     chain,
			Decoder:   TezosDecoder{Agg: agg},
			Txs:       func() int64 { return agg.Operations },
			Summarize: func() ChainSummary { return SummarizeTezos(agg) },
			State:     func() ShardState { return &agg.TezosShard },
		}, nil
	case "xrp":
		agg := NewXRPAggregator(origin, bucket)
		return StatsKit{
			Chain:     chain,
			Decoder:   XRPDecoder{Agg: agg},
			Txs:       func() int64 { return agg.Transactions },
			Summarize: func() ChainSummary { return SummarizeXRP(agg) },
			State:     func() ShardState { return &agg.XRPShard },
		}, nil
	}
	return StatsKit{}, fmt.Errorf("core: unknown chain %q", chain)
}

// cloneCounts deep-copies a count map so a summary never aliases live
// aggregator state.
func cloneCounts(src map[string]int64) map[string]int64 {
	dst := make(map[string]int64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// SummarizeEOS captures an EOS aggregator's deterministic footprint. It
// holds the aggregator lock while it reads and deep-copies everything the
// summary keeps, so it is safe to call while ingest batches keep landing,
// and the returned summary is immutable afterwards — the copy-on-write
// primitive behind the serving layer's snapshots (internal/serve).
func SummarizeEOS(a *EOSAggregator) ChainSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.EOSShard.Summary()
}

// Summary captures the shard's deterministic footprint. The caller must own
// the shard exclusively (for an aggregator's embedded shard, that means
// holding its mutex — use SummarizeEOS). Nothing in the returned summary
// aliases shard state.
func (s *EOSShard) Summary() ChainSummary {
	wash := AnalyzeWashTrades(s.Trades, 5)
	sum := ChainSummary{
		Chain:        "eos",
		Blocks:       s.Blocks,
		Transactions: s.Transactions,
		First:        s.FirstBlockTime,
		Last:         s.LastBlockTime,
		TypeCounts:   cloneCounts(s.ActionsByName),
		BucketTotals: stats.TotalValues(s.Series),
		Wash:         &wash,
	}
	var eidosShare float64
	if s.Actions > 0 {
		eidosShare = float64(s.eidosActions) / float64(s.Actions)
	}
	sum.Notes = append(sum.Notes,
		fmt.Sprintf("boomerang txs:   %d", s.boomerangs),
		fmt.Sprintf("eidos share:     %.2f%% of actions", 100*eidosShare))
	return sum
}

// SummarizeTezos captures a Tezos aggregator's deterministic footprint.
// Like SummarizeEOS it locks and deep-copies, so it is safe under
// concurrent ingestion and the result is immutable.
func SummarizeTezos(a *TezosAggregator) ChainSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.TezosShard.Summary()
}

// Summary captures the shard's deterministic footprint; the caller must own
// the shard exclusively (see EOSShard.Summary).
func (s *TezosShard) Summary() ChainSummary {
	var endorsementShare float64
	if s.Operations > 0 {
		endorsementShare = float64(s.OpsByKind["endorsement"]) / float64(s.Operations)
	}
	return ChainSummary{
		Chain:        "tezos",
		Blocks:       s.Blocks,
		Transactions: s.Operations,
		First:        s.FirstBlockTime,
		Last:         s.LastBlockTime,
		TypeCounts:   cloneCounts(s.OpsByKind),
		BucketTotals: stats.TotalValues(s.Series),
		Notes: []string{
			fmt.Sprintf("endorsements:    %.2f%% of ops", 100*endorsementShare),
		},
	}
}

// SummarizeXRP captures an XRP aggregator's deterministic footprint. Like
// SummarizeEOS it locks and deep-copies, so it is safe under concurrent
// ingestion and the result is immutable.
func SummarizeXRP(a *XRPAggregator) ChainSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.XRPShard.Summary()
}

// Summary captures the shard's deterministic footprint; the caller must own
// the shard exclusively (see EOSShard.Summary).
func (s *XRPShard) Summary() ChainSummary {
	var failedShare float64
	if s.Transactions > 0 {
		failedShare = float64(s.Failed) / float64(s.Transactions)
	}
	return ChainSummary{
		Chain:        "xrp",
		Blocks:       s.Ledgers,
		Transactions: s.Transactions,
		First:        s.FirstLedgerTime,
		Last:         s.LastLedgerTime,
		TypeCounts:   cloneCounts(s.TxByType),
		BucketTotals: stats.TotalValues(s.Series),
		Notes: []string{
			fmt.Sprintf("failed txs:      %d (%.2f%%)", s.Failed, 100*failedShare),
		},
	}
}

// Render formats the summary as the stable "figures" section cmd/crawl
// prints after a live crawl and cmd/report -replay prints after an offline
// replay. Everything is sorted and derived from order-independent state,
// so the text depends only on the set of ingested blocks.
func (s ChainSummary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s figures ---\n", s.Chain)
	fmt.Fprintf(&sb, "blocks:          %d\n", s.Blocks)
	fmt.Fprintf(&sb, "txs/ops:         %d\n", s.Transactions)
	if s.First.IsZero() || s.Blocks == 0 {
		sb.WriteString("window:          (empty)\n")
	} else {
		fmt.Fprintf(&sb, "window:          %s .. %s\n",
			s.First.UTC().Format(time.RFC3339), s.Last.UTC().Format(time.RFC3339))
		fmt.Fprintf(&sb, "observed tps:    %.3f\n", ObservedTPS(s.Transactions, s.First, s.Last))
	}
	if len(s.BucketTotals) > 0 {
		vals := make([]float64, len(s.BucketTotals))
		for i, v := range s.BucketTotals {
			vals[i] = float64(v)
		}
		// One sort serves the whole quantile grid.
		sel := stats.GetSelector()
		sel.Load(vals)
		fmt.Fprintf(&sb, "bucket p50/p90/p99: %.1f / %.1f / %.1f\n",
			sel.Percentile(50), sel.Percentile(90), sel.Percentile(99))
		stats.PutSelector(sel)
	}
	if len(s.TypeCounts) > 0 {
		var total int64
		names := make([]string, 0, len(s.TypeCounts))
		for name, n := range s.TypeCounts {
			names = append(names, name)
			total += n
		}
		sort.Slice(names, func(i, j int) bool {
			if s.TypeCounts[names[i]] != s.TypeCounts[names[j]] {
				return s.TypeCounts[names[i]] > s.TypeCounts[names[j]]
			}
			return names[i] < names[j]
		})
		sb.WriteString("types:\n")
		for _, name := range names {
			fmt.Fprintf(&sb, "  %-22s %10d  %5.1f%%\n",
				name, s.TypeCounts[name], 100*float64(s.TypeCounts[name])/float64(total))
		}
	}
	if s.Wash != nil {
		fmt.Fprintf(&sb, "wash trades:     %d settled, self-trade %.1f%%, top-5 involvement %.1f%%\n",
			s.Wash.TotalTrades, 100*s.Wash.SelfTradeShare, 100*s.Wash.Top5Share)
		for _, w := range s.Wash.TopAccounts {
			fmt.Fprintf(&sb, "  %-22s trades %7d  self %5.1f%%\n", w.Account, w.Trades, 100*w.SelfTradeShare)
		}
	}
	for _, note := range s.Notes {
		sb.WriteString(note)
		sb.WriteByte('\n')
	}
	return sb.String()
}
