package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/rpcserve"
	"repro/internal/xrp"
)

func TestSpamClusterDetection(t *testing.T) {
	d := NewSpamClusterDetector()
	base := chain.ObservationStart

	// A hub activating 20 drones within a week.
	for i := 0; i < 20; i++ {
		d.ObserveActivation("rHub", fmt.Sprintf("rDrone%02d", i),
			base.Add(time.Duration(i)*8*time.Hour))
	}
	// An exchange activating users that transact externally.
	for i := 0; i < 15; i++ {
		d.ObserveActivation("rExchange", fmt.Sprintf("rUser%02d", i), base)
	}

	var payments []XRPPaymentView
	// Drones shuffle worthless tokens among themselves.
	for i := 0; i < 200; i++ {
		payments = append(payments, XRPPaymentView{
			From: fmt.Sprintf("rDrone%02d", i%20),
			To:   fmt.Sprintf("rDrone%02d", (i+7)%20),
		})
	}
	// A few flows leave the cluster.
	for i := 0; i < 10; i++ {
		payments = append(payments, XRPPaymentView{
			From: fmt.Sprintf("rDrone%02d", i%20), To: "rSomewhere", HasValue: true,
		})
	}
	// Exchange users pay the outside world (legitimate).
	for i := 0; i < 100; i++ {
		payments = append(payments, XRPPaymentView{
			From: fmt.Sprintf("rUser%02d", i%15), To: "rMerchant", HasValue: true,
		})
	}

	clusters := d.Detect(payments)
	if len(clusters) != 1 {
		t.Fatalf("clusters: %+v", clusters)
	}
	c := clusters[0]
	if c.Parent != "rHub" || c.Members != 20 {
		t.Fatalf("cluster: %+v", c)
	}
	if c.InternalShare < 0.9 {
		t.Fatalf("internal share = %f", c.InternalShare)
	}
	if c.ZeroValueShare != 1.0 {
		t.Fatalf("zero-value share = %f", c.ZeroValueShare)
	}
	if c.ActivationSpan <= 0 || c.ActivationSpan > 8*24*time.Hour {
		t.Fatalf("activation span = %v", c.ActivationSpan)
	}
}

func TestSpamClusterThresholds(t *testing.T) {
	d := NewSpamClusterDetector()
	// Too small a cluster: below MinMembers.
	for i := 0; i < 5; i++ {
		d.ObserveActivation("rTiny", fmt.Sprintf("rT%02d", i), chain.ObservationStart)
	}
	payments := []XRPPaymentView{{From: "rT00", To: "rT01"}}
	if got := d.Detect(payments); len(got) != 0 {
		t.Fatalf("tiny cluster reported: %+v", got)
	}
	// Big cluster but mostly external flows: not spam.
	for i := 0; i < 30; i++ {
		d.ObserveActivation("rLegit", fmt.Sprintf("rL%02d", i), chain.ObservationStart)
	}
	payments = nil
	for i := 0; i < 100; i++ {
		payments = append(payments, XRPPaymentView{From: fmt.Sprintf("rL%02d", i%30), To: "rOutside"})
	}
	payments = append(payments, XRPPaymentView{From: "rL00", To: "rL01"})
	if got := d.Detect(payments); len(got) != 0 {
		t.Fatalf("externally-trading cluster reported: %+v", got)
	}
}

func TestPaymentViewsValuation(t *testing.T) {
	a := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	gw := "rGW"
	a.AddExchanges([]xrp.Exchange{{
		Time:      chain.ObservationStart,
		Base:      xrp.AssetKey{Currency: "USD", Issuer: xrp.Address(gw)},
		Counter:   xrp.AssetKey{Currency: "XRP"},
		BaseValue: 1 * xrp.DropsPerXRP, CounterValue: 5 * xrp.DropsPerXRP,
	}})
	a.IngestLedger(xrpLedger(1, chain.ObservationStart,
		payment("rA", "rB", xrpAmt("XRP", "", 10), "tesSUCCESS"),
		payment("rA", "rB", xrpAmt("USD", gw, 10), "tesSUCCESS"),
		payment("rA", "rB", xrpAmt("JNK", "rNobody", 10), "tesSUCCESS"),
		payment("rA", "rB", xrpAmt("XRP", "", 10), "tecUNFUNDED_PAYMENT"),
	))
	views := a.PaymentViews()
	if len(views) != 3 {
		t.Fatalf("views: %d (failed payment must be excluded)", len(views))
	}
	if !views[0].HasValue || !views[1].HasValue {
		t.Fatalf("native + rated IOU should have value: %+v", views[:2])
	}
	if views[2].HasValue {
		t.Fatal("junk IOU should be valueless")
	}
}

// TestSpamClusterEndToEnd drives the detector from simulated ledger data:
// activations observed via explorer-style parent pointers and payments from
// the crawled aggregate.
func TestSpamClusterEndToEnd(t *testing.T) {
	st := xrp.New(xrp.DefaultConfig(2000))
	hub := xrp.NewAddress("e2e-hub")
	st.Fund(hub, 1_000_000*xrp.DropsPerXRP)
	var drones []xrp.Address
	for i := 0; i < 12; i++ {
		d := xrp.NewAddress(fmt.Sprintf("e2e-drone-%d", i))
		st.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: hub, Destination: d, Amount: xrp.XRP(100)})
		drones = append(drones, d)
	}
	st.CloseLedger()
	for _, d := range drones {
		st.Submit(xrp.Transaction{Type: xrp.TxTrustSet, Account: d, LimitAmount: xrp.IOU("BTC", hub, 1_000_000)})
	}
	st.CloseLedger()
	for _, d := range drones {
		st.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: hub, Destination: d, Amount: xrp.IOU("BTC", hub, 1000)})
	}
	st.CloseLedger()
	for round := 0; round < 20; round++ {
		for i, d := range drones {
			st.Submit(xrp.Transaction{
				Type: xrp.TxPayment, Account: d, Destination: drones[(i+1)%len(drones)],
				Amount: xrp.IOU("BTC", hub, 1),
			})
		}
		st.CloseLedger()
	}

	agg := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	for i := int64(1); i <= st.HeadIndex(); i++ {
		led := rpcserve.XRPLedgerToJSON(st.GetLedger(i), true)
		if err := agg.IngestLedger(&led); err != nil {
			t.Fatal(err)
		}
	}
	det := NewSpamClusterDetector()
	for _, d := range drones {
		acct := st.GetAccount(d)
		det.ObserveActivation(string(acct.Parent), string(d), acct.Activated)
	}
	clusters := det.Detect(agg.PaymentViews())
	if len(clusters) != 1 || clusters[0].Parent != string(hub) {
		t.Fatalf("clusters: %+v", clusters)
	}
	// The drones' BTC shuffles are valueless; only the hub's 12 activating
	// XRP payments carry value.
	if clusters[0].ZeroValueShare < 0.9 {
		t.Fatalf("hub BTC should be valueless: %+v", clusters[0])
	}
}

// TestSpamClusterDetectorMerge: merging detectors is deterministic — the
// earliest activation wins, exact-time ties break to the smaller parent —
// so merge order never changes what Detect reports.
func TestSpamClusterDetectorMerge(t *testing.T) {
	t0 := time.Date(2019, time.October, 5, 0, 0, 0, 0, time.UTC)
	build := func(obs ...[3]string) *SpamClusterDetector {
		d := NewSpamClusterDetector()
		for _, o := range obs {
			offset, _ := time.ParseDuration(o[2])
			d.ObserveActivation(o[0], o[1], t0.Add(offset))
		}
		return d
	}
	// a saw child1 first; b re-saw child1 later under another parent and
	// saw child2 at the exact same instant a did, under a smaller parent.
	a := build([3]string{"hubA", "child1", "1h"}, [3]string{"hubB", "child2", "5h"})
	b := build([3]string{"hubC", "child1", "9h"}, [3]string{"hubA", "child2", "5h"})

	check := func(d *SpamClusterDetector) {
		t.Helper()
		if d.parentOf["child1"] != "hubA" || !d.activated["child1"].Equal(t0.Add(time.Hour)) {
			t.Fatalf("child1: parent %q at %v, want hubA at +1h", d.parentOf["child1"], d.activated["child1"])
		}
		if d.parentOf["child2"] != "hubA" {
			t.Fatalf("child2 tie broke to %q, want hubA (lexicographically smaller)", d.parentOf["child2"])
		}
	}
	ab := build()
	ab.Merge(a)
	ab.Merge(b)
	check(ab)
	ba := build()
	ba.Merge(b)
	ba.Merge(a)
	check(ba)
}
