// Shard codec: the per-chain field schemas behind ShardState.EncodeTo and
// DecodeFrom, written against the bounds-checked primitives in
// internal/wire (ShardEnc/ShardDec) and sealed in the versioned,
// checksummed envelope (wire.SealShard). See DESIGN.md "distributed crawl
// & shard wire format" for the layout and compatibility rules.
//
// Encoding is deterministic: map keys sort before writing, floats transfer
// as IEEE 754 bits, times carry an explicit zero flag. A shard encoded on
// one machine therefore decodes on another into state whose Merge renders
// byte-identical figures to an in-process merge of the same blocks.
//
// Deliberately not serialized:
//   - EOS classification tables (TokenContracts, ContractLabels,
//     EIDOSContract): configuration, not aggregate state — the decoder's
//     own tables apply.
//   - XRP explorer exchange records beyond those ingested into the shard:
//     AddExchanges lands on the owning aggregator, which in a distributed
//     crawl is the coordinator's.
package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/wire"
	"repro/internal/xrp"
)

// stringish admits the string-keyed count maps the shards keep, including
// named string types like EOSCategory.
type stringish interface{ ~string }

// encCountMap writes a count map with sorted keys.
func encCountMap[K stringish](e *wire.ShardEnc, m map[K]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.Varint(m[K(k)])
	}
}

// decCountMap reads a count map written by encCountMap into m.
func decCountMap[K stringish](d *wire.ShardDec, m map[K]int64) {
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.String()
		v := d.Varint()
		if d.Err() == nil {
			m[K(k)] += v
		}
	}
}

// encNested writes a nested count map, both levels key-sorted.
func encNested(e *wire.ShardEnc, m map[string]map[string]int64) {
	outer := make([]string, 0, len(m))
	for k := range m {
		outer = append(outer, k)
	}
	sort.Strings(outer)
	e.Uvarint(uint64(len(outer)))
	for _, k := range outer {
		e.String(k)
		encCountMap(e, m[k])
	}
}

// decNested reads a nested count map written by encNested into m.
func decNested(d *wire.ShardDec, m map[string]map[string]int64) {
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.String()
		inner := m[k]
		if inner == nil {
			inner = make(map[string]int64)
			if d.Err() == nil {
				m[k] = inner
			}
		}
		decCountMap(d, inner)
	}
}

// encSeries writes a time series as its sorted populated cells; geometry
// (origin, width) travels in the common shard prefix, not here.
func encSeries(e *wire.ShardEnc, s *stats.TimeSeries) {
	entries := s.Entries()
	e.Uvarint(uint64(len(entries)))
	for _, en := range entries {
		e.Uvarint(uint64(en.Bucket))
		e.String(en.Label)
		e.Varint(en.Count)
	}
}

// decSeries reads cells written by encSeries into s.
func decSeries(d *wire.ShardDec, s *stats.TimeSeries) {
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		bucket := d.Uvarint()
		label := d.String()
		count := d.Varint()
		if d.Err() == nil {
			s.AddBucket(int(bucket), label, count)
		}
	}
}

// encPrefix writes the common shard prefix every chain shares: window
// geometry, covered block range and observed time bounds.
func encPrefix(e *wire.ShardEnc, w Window, cov BlockRange, first, last time.Time) {
	e.Time(w.Origin)
	e.Varint(int64(w.Bucket))
	e.Varint(cov.From)
	e.Varint(cov.To)
	e.Time(first)
	e.Time(last)
}

// decPrefix reads the common prefix, validating the bucket width before
// the caller rebuilds its series with it (NewTimeSeries panics on a
// non-positive width; a corrupted blob must error instead).
func decPrefix(d *wire.ShardDec) (w Window, cov BlockRange, first, last time.Time, err error) {
	w.Origin = d.Time()
	w.Bucket = time.Duration(d.Varint())
	cov.From = d.Varint()
	cov.To = d.Varint()
	first = d.Time()
	last = d.Time()
	if err = d.Err(); err != nil {
		return
	}
	if w.Bucket <= 0 {
		err = fmt.Errorf("core: shard has non-positive bucket width %v", w.Bucket)
	}
	return
}

// sealTo seals a chain's encoded body and writes the blob.
func sealTo(w io.Writer, chain string, body []byte) error {
	_, err := w.Write(wire.SealShard(chain, body))
	return err
}

// openFrom reads a sealed blob, validates the envelope and the chain name,
// and returns a decoder over the body.
func openFrom(r io.Reader, wantChain string) (*wire.ShardDec, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading shard blob: %w", err)
	}
	chain, body, err := wire.OpenShard(blob)
	if err != nil {
		return nil, err
	}
	if chain != wantChain {
		return nil, fmt.Errorf("core: decoding %q shard into %s state", chain, wantChain)
	}
	return wire.NewShardDec(body), nil
}

// finishDecode is every chain's decode epilogue: surface the sticky error
// and refuse trailing bytes (a structurally valid prefix followed by junk
// is corruption, not a shorter shard).
func finishDecode(chain string, d *wire.ShardDec) error {
	if err := d.Err(); err != nil {
		return fmt.Errorf("core: decoding %s shard: %w", chain, err)
	}
	if n := d.Remaining(); n != 0 {
		return fmt.Errorf("core: decoding %s shard: %d trailing bytes after last field", chain, n)
	}
	return nil
}

// EncodeTo writes the shard as a sealed blob (ShardState contract).
func (s *EOSShard) EncodeTo(w io.Writer) error {
	var e wire.ShardEnc
	encPrefix(&e, s.Window(), s.covered, s.FirstBlockTime, s.LastBlockTime)
	e.Varint(s.Blocks)
	e.Varint(s.Transactions)
	e.Varint(s.Actions)
	encCountMap(&e, s.ActionsByName)
	encCountMap(&e, s.ActionsByCategory)
	encSeries(&e, s.Series)
	encNested(&e, s.ReceivedByContract)
	encNested(&e, s.SentPairs)
	e.Uvarint(uint64(len(s.Trades)))
	for _, t := range s.Trades {
		e.String(t.Buyer)
		e.String(t.Seller)
		e.String(t.Currency)
		e.Float(t.Amount)
	}
	e.Varint(s.boomerangs)
	e.Varint(s.eidosActions)
	symbols := make([]string, 0, len(s.VolumeBySymbol))
	for sym := range s.VolumeBySymbol {
		symbols = append(symbols, sym)
	}
	sort.Strings(symbols)
	e.Uvarint(uint64(len(symbols)))
	for _, sym := range symbols {
		e.String(sym)
		e.Float(s.VolumeBySymbol[sym])
	}
	e.Float(s.BoomerangVolume)
	return sealTo(w, "eos", e.Bytes())
}

// DecodeFrom replaces the shard with a blob's contents (ShardState
// contract). The classification tables are preserved — they are the
// decoder's configuration, never transferred.
func (s *EOSShard) DecodeFrom(r io.Reader) error {
	d, err := openFrom(r, "eos")
	if err != nil {
		return err
	}
	w, cov, first, last, err := decPrefix(d)
	if err != nil {
		return err
	}
	tables := EOSShard{
		TokenContracts: s.TokenContracts,
		ContractLabels: s.ContractLabels,
		EIDOSContract:  s.EIDOSContract,
	}
	*s = tables
	s.init(w.Origin, w.Bucket)
	s.covered = cov
	s.FirstBlockTime, s.LastBlockTime = first, last
	s.Blocks = d.Varint()
	s.Transactions = d.Varint()
	s.Actions = d.Varint()
	decCountMap(d, s.ActionsByName)
	decCountMap(d, s.ActionsByCategory)
	decSeries(d, s.Series)
	decNested(d, s.ReceivedByContract)
	decNested(d, s.SentPairs)
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		t := DEXTrade{
			Buyer:    d.String(),
			Seller:   d.String(),
			Currency: d.String(),
			Amount:   d.Float(),
		}
		if d.Err() == nil {
			s.Trades = append(s.Trades, t)
		}
	}
	s.boomerangs = d.Varint()
	s.eidosActions = d.Varint()
	n = d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		sym := d.String()
		v := d.Float()
		if d.Err() == nil {
			s.VolumeBySymbol[sym] += v
		}
	}
	s.BoomerangVolume = d.Float()
	return finishDecode("eos", d)
}

// EncodeTo writes the shard as a sealed blob (ShardState contract).
func (s *TezosShard) EncodeTo(w io.Writer) error {
	var e wire.ShardEnc
	encPrefix(&e, s.Window(), s.covered, s.FirstBlockTime, s.LastBlockTime)
	e.Varint(s.Blocks)
	e.Varint(s.Operations)
	encCountMap(&e, s.OpsByKind)
	encSeries(&e, s.Series)
	encNested(&e, s.sentTo)
	e.Uvarint(uint64(len(s.Votes)))
	for _, v := range s.Votes {
		e.Time(v.Time)
		e.Varint(v.Level)
		e.String(v.Kind)
		e.String(v.Proposal)
		e.String(v.Ballot)
		e.Varint(v.Rolls)
		e.String(v.Source)
	}
	return sealTo(w, "tezos", e.Bytes())
}

// DecodeFrom replaces the shard with a blob's contents (ShardState
// contract).
func (s *TezosShard) DecodeFrom(r io.Reader) error {
	d, err := openFrom(r, "tezos")
	if err != nil {
		return err
	}
	w, cov, first, last, err := decPrefix(d)
	if err != nil {
		return err
	}
	*s = TezosShard{}
	s.init(w.Origin, w.Bucket)
	s.covered = cov
	s.FirstBlockTime, s.LastBlockTime = first, last
	s.Blocks = d.Varint()
	s.Operations = d.Varint()
	decCountMap(d, s.OpsByKind)
	decSeries(d, s.Series)
	decNested(d, s.sentTo)
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		v := GovernanceVote{
			Time:     d.Time(),
			Level:    d.Varint(),
			Kind:     d.String(),
			Proposal: d.String(),
			Ballot:   d.String(),
			Rolls:    d.Varint(),
			Source:   d.String(),
		}
		if d.Err() == nil {
			s.Votes = append(s.Votes, v)
		}
	}
	return finishDecode("tezos", d)
}

// EncodeTo writes the shard as a sealed blob (ShardState contract).
func (s *XRPShard) EncodeTo(w io.Writer) error {
	var e wire.ShardEnc
	encPrefix(&e, s.Window(), s.covered, s.FirstLedgerTime, s.LastLedgerTime)
	e.Varint(s.Ledgers)
	e.Varint(s.Transactions)
	e.Varint(s.Failed)
	encCountMap(&e, s.TxByType)
	encCountMap(&e, s.TxByResult)
	encSeries(&e, s.Series)
	accounts := make([]string, 0, len(s.byAccount))
	for addr := range s.byAccount {
		accounts = append(accounts, addr)
	}
	sort.Strings(accounts)
	e.Uvarint(uint64(len(accounts)))
	for _, addr := range accounts {
		agg := s.byAccount[addr]
		e.String(addr)
		e.Varint(agg.Total)
		encCountMap(&e, agg.ByType)
		tags := make([]uint32, 0, len(agg.DestTags))
		for tag := range agg.DestTags {
			tags = append(tags, tag)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
		e.Uvarint(uint64(len(tags)))
		for _, tag := range tags {
			e.Uvarint(uint64(tag))
			e.Varint(agg.DestTags[tag])
		}
	}
	e.Uvarint(uint64(len(s.payments)))
	for _, p := range s.payments {
		e.Time(p.Time)
		e.String(p.From)
		e.String(p.To)
		e.Uvarint(uint64(p.DestTag))
		e.String(p.Currency)
		e.String(p.Issuer)
		e.Varint(p.Value)
		e.Bool(p.Success)
		e.Bool(p.Native)
	}
	e.Varint(s.offersCreated)
	encOfferSet(&e, s.offersExecuted)
	encOfferSet(&e, s.restingOffers)
	e.Uvarint(uint64(len(s.exchanges)))
	for _, ex := range s.exchanges {
		e.Time(ex.Time)
		e.Varint(ex.LedgerIndex)
		e.String(ex.Base.Currency)
		e.String(string(ex.Base.Issuer))
		e.String(ex.Counter.Currency)
		e.String(string(ex.Counter.Issuer))
		e.Varint(ex.BaseValue)
		e.Varint(ex.CounterValue)
		e.String(string(ex.Maker))
		e.String(string(ex.Taker))
		e.Uvarint(uint64(ex.MakerSequence))
	}
	return sealTo(w, "xrp", e.Bytes())
}

// DecodeFrom replaces the shard with a blob's contents (ShardState
// contract).
func (s *XRPShard) DecodeFrom(r io.Reader) error {
	d, err := openFrom(r, "xrp")
	if err != nil {
		return err
	}
	w, cov, first, last, err := decPrefix(d)
	if err != nil {
		return err
	}
	*s = XRPShard{}
	s.init(w.Origin, w.Bucket)
	s.covered = cov
	s.FirstLedgerTime, s.LastLedgerTime = first, last
	s.Ledgers = d.Varint()
	s.Transactions = d.Varint()
	s.Failed = d.Varint()
	decCountMap(d, s.TxByType)
	decCountMap(d, s.TxByResult)
	decSeries(d, s.Series)
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		addr := d.String()
		agg := &xrpAccountAgg{ByType: make(map[string]int64), DestTags: make(map[uint32]int64)}
		agg.Total = d.Varint()
		decCountMap(d, agg.ByType)
		tn := d.Count()
		for j := 0; j < tn && d.Err() == nil; j++ {
			tag := d.Uvarint()
			count := d.Varint()
			if d.Err() == nil {
				agg.DestTags[uint32(tag)] += count
			}
		}
		if d.Err() == nil {
			s.byAccount[addr] = agg
		}
	}
	n = d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		p := xrpPayment{
			Time:     d.Time(),
			From:     d.String(),
			To:       d.String(),
			DestTag:  uint32(d.Uvarint()),
			Currency: d.String(),
			Issuer:   d.String(),
			Value:    d.Varint(),
			Success:  d.Bool(),
			Native:   d.Bool(),
		}
		if d.Err() == nil {
			s.payments = append(s.payments, p)
		}
	}
	s.offersCreated = d.Varint()
	decOfferSet(d, s.offersExecuted)
	decOfferSet(d, s.restingOffers)
	n = d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		ex := xrp.Exchange{
			Time:        d.Time(),
			LedgerIndex: d.Varint(),
		}
		ex.Base = xrpAssetKey(d.String(), d.String())
		ex.Counter = xrpAssetKey(d.String(), d.String())
		ex.BaseValue = d.Varint()
		ex.CounterValue = d.Varint()
		ex.Maker = xrp.Address(d.String())
		ex.Taker = xrp.Address(d.String())
		ex.MakerSequence = uint32(d.Uvarint())
		if d.Err() == nil {
			s.exchanges = append(s.exchanges, ex)
		}
	}
	return finishDecode("xrp", d)
}

// encOfferSet writes an offer-reference set sorted by account then
// sequence.
func encOfferSet(e *wire.ShardEnc, set map[offerRef]bool) {
	refs := make([]offerRef, 0, len(set))
	for ref := range set {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Account != refs[j].Account {
			return refs[i].Account < refs[j].Account
		}
		return refs[i].Sequence < refs[j].Sequence
	})
	e.Uvarint(uint64(len(refs)))
	for _, ref := range refs {
		e.String(ref.Account)
		e.Uvarint(uint64(ref.Sequence))
	}
}

// decOfferSet reads a set written by encOfferSet into set.
func decOfferSet(d *wire.ShardDec, set map[offerRef]bool) {
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		account := d.String()
		seq := d.Uvarint()
		if d.Err() == nil {
			set[offerRef{Account: account, Sequence: uint32(seq)}] = true
		}
	}
}

// DecodeShard opens one sealed shard blob: it peeks the envelope's chain
// name, builds that chain's empty state and decodes into it — the merge
// coordinator's entry point for blobs of unknown chain.
func DecodeShard(blob []byte) (ShardState, error) {
	chainName, _, err := wire.OpenShard(blob)
	if err != nil {
		return nil, err
	}
	// The placeholder geometry is immediately replaced by the blob's own
	// window during DecodeFrom.
	st, err := NewShardState(chainName, time.Unix(0, 0).UTC(), time.Second)
	if err != nil {
		return nil, err
	}
	if err := st.DecodeFrom(bytes.NewReader(blob)); err != nil {
		return nil, err
	}
	return st, nil
}
