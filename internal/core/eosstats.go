// Package core implements the paper's measurement pipeline: classification
// of every transaction on EOS, Tezos and XRP, per-category and per-account
// aggregation, throughput time series, and the case-study detectors
// (WhaleEx wash-trading, EIDOS boomerangs, XRP zero-value payments,
// Tezos governance). It consumes the same wire JSON the collectors fetch,
// so the whole analysis runs off crawled data rather than simulator
// internals.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rpcserve"
	"repro/internal/stats"
)

// EOS action names the paper's Figure 1 groups under "Account actions" and
// "Other actions" (everything defined by system contracts).
var eosAccountActions = map[string]bool{
	"bidname": true, "deposit": true, "newaccount": true,
	"updateauth": true, "linkauth": true,
}

var eosOtherSystemActions = map[string]bool{
	"delegatebw": true, "buyrambytes": true, "undelegatebw": true,
	"rentcpu": true, "voteproducer": true, "buyram": true, "sellram": true,
}

// EOSCategory buckets the Figure 1 rows.
type EOSCategory string

// Figure 1 categories for EOS.
const (
	EOSCatTransfer EOSCategory = "P2P transaction"
	EOSCatAccount  EOSCategory = "Account actions"
	EOSCatOther    EOSCategory = "Other actions"
	EOSCatOthers   EOSCategory = "Others"
)

// EOSShard is the mutable aggregate state for a partition of EOS blocks.
// A shard is owned by exactly one goroutine (no internal locking); shards
// over disjoint block sets merge with Merge, and because every statistic a
// shard keeps is order-independent (counters, count maps, time buckets,
// unordered trade sets), folding the same blocks through any number of
// shards in any interleaving produces the same aggregate. EOSAggregator
// wraps one shard behind a mutex for callers that want the classic shared
// aggregator surface.
type EOSShard struct {
	// TokenContracts are accounts implementing the standard token
	// interface; their "transfer" actions count as P2P transactions.
	// Shards spawned from one aggregator share these read-only tables.
	TokenContracts map[string]bool
	// ContractLabels maps the top contracts to app categories (Betting,
	// Games, Tokens, Exchange, Pornography, Others) for Figure 3a. The
	// paper labeled the top 100 contracts manually.
	ContractLabels map[string]string
	// EIDOSContract is the boomerang case-study contract.
	EIDOSContract string

	Blocks       int64
	Transactions int64
	Actions      int64

	ActionsByName     map[string]int64      // Figure 1 rows
	ActionsByCategory map[EOSCategory]int64 // Figure 1 groups
	Series            *stats.TimeSeries     // Figure 3a (label = app category)

	// ReceivedByContract counts actions addressed to each contract, with a
	// per-action breakdown (Figure 4).
	ReceivedByContract map[string]map[string]int64
	// SentPairs counts sender→receiver(contract) actions (Figure 5).
	SentPairs map[string]map[string]int64

	// Wash-trade inputs: every verifytrade2-style DEX settlement. The
	// slice order depends on ingestion interleaving, but every consumer
	// (AnalyzeWashTrades) reduces it order-independently.
	Trades []DEXTrade
	// Boomerang inputs: transfer legs per transaction for §4.1.
	boomerangs int64
	// EIDOS bookkeeping.
	eidosActions int64

	// VolumeBySymbol sums transferred token amounts per symbol — the
	// paper's "financial volume" dimension of throughput. Boomerang
	// volume (EOS merely bounced off the EIDOS contract) is tracked
	// separately to show how much of the apparent volume is circular.
	// Float sums round with accumulation order, so these two are
	// progress-line material, never part of the deterministic figures.
	VolumeBySymbol  map[string]float64
	BoomerangVolume float64

	FirstBlockTime, LastBlockTime time.Time

	// covered is the block range this shard aggregated, when known: set by
	// SetCovered before a distributed crawl emits the shard and validated
	// against overlap on Merge. In-process ingest shards leave it zero
	// (unknown) and merge without range bookkeeping.
	covered BlockRange

	// legScratch is reused for per-transaction transfer legs, keeping the
	// boomerang check allocation-free per transaction.
	legScratch []transferLeg
}

// EOSAggregator ingests crawled EOS blocks and accumulates every statistic
// the paper reports for EOS (Figures 1, 2, 3a, 4, 5 and the §4.1 case
// studies). It is a thin locked wrapper around one EOSShard; concurrent
// writers either share it (IngestBlocks batches under the lock) or fold
// into private shards from NewShard and MergeShard once at drain.
type EOSAggregator struct {
	mu sync.Mutex
	EOSShard
}

// DEXTrade is one settled on-chain trade (WhaleEx verifytrade2).
type DEXTrade struct {
	Buyer, Seller string
	Currency      string
	Amount        float64
}

// NewEOSAggregator builds an aggregator with the default labeling used
// throughout the repo (matching the simulated workload's contracts).
func NewEOSAggregator(origin time.Time, bucket time.Duration) *EOSAggregator {
	a := &EOSAggregator{}
	a.EOSShard.applyDefaultTables()
	a.EOSShard.init(origin, bucket)
	return a
}

// applyDefaultTables installs the repo's default classification tables —
// the paper labeled the top 100 contracts manually; these match the
// simulated workload's contracts. The tables are configuration, shared
// read-only by every shard spawned from one aggregator, and never part of
// serialized shard state: a decoded shard gets the decoder's own tables.
func (s *EOSShard) applyDefaultTables() {
	s.TokenContracts = map[string]bool{
		"eosio.token": true, "eidosonecoin": true, "lynxtoken123": true,
	}
	s.ContractLabels = map[string]string{
		"eosio.token":  "Tokens",
		"eidosonecoin": "Tokens",
		"lynxtoken123": "Tokens",
		"betdicetasks": "Betting", "betdicegroup": "Betting",
		"betdiceadmin": "Betting", "betdicebacca": "Betting",
		"betdicesicbo": "Betting", "bluebetproxy": "Betting",
		"bluebettexas": "Betting", "bluebetjacks": "Betting",
		"bluebetbcrat": "Betting",
		"whaleextrust": "Exchange",
		"pornhashbaby": "Pornography",
		"eossanguoone": "Games",
	}
	s.EIDOSContract = "eidosonecoin"
}

// init allocates a shard's mutable containers, leaving the shared
// classification tables to the caller.
func (s *EOSShard) init(origin time.Time, bucket time.Duration) {
	s.ActionsByName = make(map[string]int64)
	s.ActionsByCategory = make(map[EOSCategory]int64)
	s.Series = stats.NewTimeSeries(origin, bucket)
	s.ReceivedByContract = make(map[string]map[string]int64)
	s.SentPairs = make(map[string]map[string]int64)
	s.VolumeBySymbol = make(map[string]float64)
}

// NewShard spawns an empty shard sharing the aggregator's read-only
// classification tables and series geometry. The caller owns it exclusively
// until MergeShard.
func (a *EOSAggregator) NewShard() *EOSShard {
	s := &EOSShard{
		TokenContracts: a.TokenContracts,
		ContractLabels: a.ContractLabels,
		EIDOSContract:  a.EIDOSContract,
	}
	s.init(a.Series.Origin(), a.Series.Width())
	return s
}

// MergeShard folds a privately-owned shard into the aggregator under one
// lock acquisition and resets it. Merging shards in any order yields the
// same aggregate: every shard statistic is a sum, a count map, a time
// bucket or an unordered record set.
func (a *EOSAggregator) MergeShard(s *EOSShard) {
	a.mu.Lock()
	a.EOSShard.merge(s)
	a.mu.Unlock()
}

// NewState spawns a private shard behind the chain-agnostic ShardState
// contract — what the ingest pool's generic shard sink consumes.
func (a *EOSAggregator) NewState() ShardState { return a.NewShard() }

// MergeState folds a ShardState produced by NewState (or decoded from a
// shard blob with the same window) into the aggregator under its lock.
func (a *EOSAggregator) MergeState(st ShardState) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.EOSShard.Merge(st)
}

// mergeCounts adds src's counters into dst.
func mergeCounts[K comparable](dst, src map[K]int64) {
	for k, v := range src {
		dst[k] += v
	}
}

// mergeNested adds src's nested counters into dst.
func mergeNested(dst, src map[string]map[string]int64) {
	for outer, m := range src {
		d := dst[outer]
		if d == nil {
			d = make(map[string]int64, len(m))
			dst[outer] = d
		}
		for inner, v := range m {
			d[inner] += v
		}
	}
}

// mergeWindow widens (first, last) to cover (f, l).
func mergeWindow(first, last *time.Time, f, l time.Time) {
	if !f.IsZero() && (first.IsZero() || f.Before(*first)) {
		*first = f
	}
	if l.After(*last) {
		*last = l
	}
}

// Chain names the shard's chain for the ShardState contract.
func (s *EOSShard) Chain() string { return "eos" }

// Window returns the shard's time-series geometry.
func (s *EOSShard) Window() Window {
	return Window{Origin: s.Series.Origin(), Bucket: s.Series.Width()}
}

// Covered returns the block range this shard aggregated, when known.
func (s *EOSShard) Covered() BlockRange { return s.covered }

// SetCovered records the block range the shard aggregated.
func (s *EOSShard) SetCovered(r BlockRange) { s.covered = r }

// Merge implements ShardState: it validates chain, window and covered-range
// compatibility, then folds src into s and resets it.
func (s *EOSShard) Merge(src ShardState) error {
	typed, cov, err := mergeAsShard[*EOSShard](s, src)
	if err != nil {
		return err
	}
	s.merge(typed)
	s.covered = cov
	return nil
}

// merge folds src into s. src must cover blocks disjoint from s's (each
// block ingested into exactly one shard); afterwards src is reset so a
// stale alias cannot double-merge it.
func (s *EOSShard) merge(src *EOSShard) {
	s.Blocks += src.Blocks
	s.Transactions += src.Transactions
	s.Actions += src.Actions
	mergeCounts(s.ActionsByName, src.ActionsByName)
	mergeCounts(s.ActionsByCategory, src.ActionsByCategory)
	s.Series.Merge(src.Series)
	mergeNested(s.ReceivedByContract, src.ReceivedByContract)
	mergeNested(s.SentPairs, src.SentPairs)
	s.Trades = append(s.Trades, src.Trades...)
	s.boomerangs += src.boomerangs
	s.eidosActions += src.eidosActions
	for sym, v := range src.VolumeBySymbol {
		s.VolumeBySymbol[sym] += v
	}
	s.BoomerangVolume += src.BoomerangVolume
	mergeWindow(&s.FirstBlockTime, &s.LastBlockTime, src.FirstBlockTime, src.LastBlockTime)
	origin, width := src.Series.Origin(), src.Series.Width()
	*src = EOSShard{
		TokenContracts: src.TokenContracts,
		ContractLabels: src.ContractLabels,
		EIDOSContract:  src.EIDOSContract,
	}
	src.init(origin, width)
}

// eosBlockTime parses the nodeos timestamp format.
func eosBlockTime(s string) (time.Time, error) {
	return time.Parse("2006-01-02T15:04:05.000", s)
}

// IngestBlock folds one crawled block into the aggregate. Safe for
// concurrent use by crawl workers.
func (a *EOSAggregator) IngestBlock(b *rpcserve.EOSBlockJSON) error {
	return a.IngestBlocks([]*rpcserve.EOSBlockJSON{b})
}

// IngestBlocks folds a batch of blocks under a single lock acquisition,
// amortizing mutex contention when many decode workers feed one aggregator.
// Timestamps are parsed before the lock is taken; a malformed block fails
// the whole batch without ingesting any of it.
func (a *EOSAggregator) IngestBlocks(bs []*rpcserve.EOSBlockJSON) error {
	times := make([]time.Time, len(bs))
	for i, b := range bs {
		ts, err := eosBlockTime(b.Timestamp)
		if err != nil {
			return err
		}
		times[i] = ts
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, b := range bs {
		a.EOSShard.ingest(b, times[i])
	}
	return nil
}

// eosBatch asserts and pre-parses an ingest-pool batch: every element must
// be the EOS Decode output type, and timestamps parse before any state is
// touched, so a malformed block fails the whole batch without ingesting
// any of it.
func eosBatch(batch []any) ([]*rpcserve.EOSBlockJSON, []time.Time, error) {
	blocks := make([]*rpcserve.EOSBlockJSON, len(batch))
	times := make([]time.Time, len(batch))
	for i, v := range batch {
		b, ok := v.(*rpcserve.EOSBlockJSON)
		if !ok {
			return nil, nil, fmt.Errorf("core: eos batch element %d is %T, not *rpcserve.EOSBlockJSON", i, v)
		}
		ts, err := eosBlockTime(b.Timestamp)
		if err != nil {
			return nil, nil, err
		}
		blocks[i], times[i] = b, ts
	}
	return blocks, times, nil
}

// IngestBatch folds a batch of decoded blocks into a privately-owned shard
// — no locking; the shard's owner is the only writer.
func (s *EOSShard) IngestBatch(batch []any) error {
	blocks, times, err := eosBatch(batch)
	if err != nil {
		return err
	}
	for i, b := range blocks {
		s.ingest(b, times[i])
	}
	return nil
}

// IngestBatch folds a batch of decoded blocks into the aggregator, one
// lock acquisition for the whole batch. Assertion and timestamp parsing
// happen before the lock is taken.
func (a *EOSAggregator) IngestBatch(batch []any) error {
	blocks, times, err := eosBatch(batch)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, b := range blocks {
		a.EOSShard.ingest(b, times[i])
	}
	return nil
}

// ingest folds one block into the shard; the caller owns the shard (for an
// aggregator's embedded shard, that means holding a.mu).
func (a *EOSShard) ingest(b *rpcserve.EOSBlockJSON, ts time.Time) {
	a.Blocks++
	if a.FirstBlockTime.IsZero() || ts.Before(a.FirstBlockTime) {
		a.FirstBlockTime = ts
	}
	if ts.After(a.LastBlockTime) {
		a.LastBlockTime = ts
	}

	for ti := range b.Transactions {
		trx := &b.Transactions[ti]
		a.Transactions++
		transfersSeen := a.legScratch[:0]
		for _, act := range trx.Trx.Transaction.Actions {
			a.Actions++
			a.ActionsByName[a.figure1Name(act)]++
			a.ActionsByCategory[a.classify(act)]++
			a.Series.Add(ts, a.label(act.Account), 1)

			recv := a.ReceivedByContract[act.Account]
			if recv == nil {
				recv = make(map[string]int64)
				a.ReceivedByContract[act.Account] = recv
			}
			recv[act.Name]++

			if actor := actionActor(act); actor != "" {
				pairs := a.SentPairs[actor]
				if pairs == nil {
					pairs = make(map[string]int64)
					a.SentPairs[actor] = pairs
				}
				pairs[act.Account]++
			}

			if act.Name == "verifytrade2" {
				a.Trades = append(a.Trades, DEXTrade{
					Buyer:    act.Data["buyer"],
					Seller:   act.Data["seller"],
					Currency: currencyOf(act.Data["quantity"]),
					Amount:   amountOf(act.Data["quantity"]),
				})
			}
			if act.Name == "transfer" {
				transfersSeen = append(transfersSeen, transferLeg{
					From: act.Data["from"], To: act.Data["to"],
					Quantity: act.Data["quantity"],
				})
				if act.Account == a.EIDOSContract ||
					act.Data["from"] == a.EIDOSContract || act.Data["to"] == a.EIDOSContract {
					a.eidosActions++
				}
				qty := act.Data["quantity"]
				if sym := currencyOf(qty); sym != "" {
					amount := amountOf(qty)
					a.VolumeBySymbol[sym] += amount
					if sym == "EOS" &&
						(act.Data["from"] == a.EIDOSContract || act.Data["to"] == a.EIDOSContract) {
						a.BoomerangVolume += amount
					}
				}
			}
		}
		if isBoomerang(transfersSeen) {
			a.boomerangs++
		}
		a.legScratch = transfersSeen
	}
}

type transferLeg struct{ From, To, Quantity string }

// isBoomerang detects the EIDOS pattern: within one transaction, a transfer
// A→B is mirrored by B→A with the identical quantity (the refund leg).
func isBoomerang(legs []transferLeg) bool {
	for i, x := range legs {
		for _, y := range legs[i+1:] {
			if x.From == y.To && x.To == y.From && x.Quantity == y.Quantity {
				return true
			}
		}
	}
	return false
}

// figure1Name maps an action to its Figure 1 row: system-contract and
// token-contract actions keep their name, everything else is "others".
func (a *EOSShard) figure1Name(act rpcserve.EOSActionJSON) string {
	if act.Account == "eosio" || a.TokenContracts[act.Account] {
		return act.Name
	}
	return "others"
}

func (a *EOSShard) classify(act rpcserve.EOSActionJSON) EOSCategory {
	if a.TokenContracts[act.Account] && act.Name == "transfer" {
		return EOSCatTransfer
	}
	if act.Account == "eosio" || a.TokenContracts[act.Account] {
		if eosAccountActions[act.Name] {
			return EOSCatAccount
		}
		if eosOtherSystemActions[act.Name] {
			return EOSCatOther
		}
		if act.Name == "open" || act.Name == "close" || act.Name == "issue" ||
			act.Name == "create" || act.Name == "retire" {
			return EOSCatAccount
		}
	}
	return EOSCatOthers
}

// label resolves the contract's app category for the Figure 3a series.
func (a *EOSShard) label(contract string) string {
	if l, ok := a.ContractLabels[contract]; ok {
		return l
	}
	return "Others"
}

func actionActor(act rpcserve.EOSActionJSON) string {
	if len(act.Authorization) == 0 {
		return ""
	}
	return act.Authorization[0]["actor"]
}

func currencyOf(quantity string) string {
	fields := strings.Fields(quantity)
	if len(fields) != 2 {
		return ""
	}
	return fields[1]
}

func amountOf(quantity string) float64 {
	fields := strings.Fields(quantity)
	if len(fields) != 2 {
		return 0
	}
	var v float64
	var intPart, fracPart int64
	var fracDigits int
	seenDot := false
	for _, c := range fields[0] {
		switch {
		case c == '.':
			seenDot = true
		case c >= '0' && c <= '9':
			if seenDot {
				fracPart = fracPart*10 + int64(c-'0')
				fracDigits++
			} else {
				intPart = intPart*10 + int64(c-'0')
			}
		}
	}
	v = float64(intPart)
	scale := 1.0
	for i := 0; i < fracDigits; i++ {
		scale *= 10
	}
	v += float64(fracPart) / scale
	return v
}

// TransferShare returns the fraction of actions that are token transfers
// (the paper: 91.6 %).
func (a *EOSAggregator) TransferShare() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Actions == 0 {
		return 0
	}
	return float64(a.ActionsByName["transfer"]) / float64(a.Actions)
}

// EIDOSShare returns the fraction of actions touching the EIDOS contract.
func (a *EOSAggregator) EIDOSShare() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Actions == 0 {
		return 0
	}
	return float64(a.eidosActions) / float64(a.Actions)
}

// BoomerangTransactions returns how many transactions exhibited the
// refund-mirror pattern.
func (a *EOSAggregator) BoomerangTransactions() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.boomerangs
}

// TopReceivers returns the k contracts with the most received actions
// together with their per-action breakdown (Figure 4).
func (a *EOSAggregator) TopReceivers(k int) []ContractProfile {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ContractProfile, 0, len(a.ReceivedByContract))
	for contract, actions := range a.ReceivedByContract {
		p := ContractProfile{Contract: contract, Label: a.label(contract)}
		for name, n := range actions {
			p.Total += n
			p.Actions = append(p.Actions, ActionCount{Name: name, Count: n})
		}
		sort.Slice(p.Actions, func(i, j int) bool {
			if p.Actions[i].Count != p.Actions[j].Count {
				return p.Actions[i].Count > p.Actions[j].Count
			}
			return p.Actions[i].Name < p.Actions[j].Name
		})
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Contract < out[j].Contract
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ContractProfile is one Figure 4 row.
type ContractProfile struct {
	Contract string
	Label    string
	Total    int64
	Actions  []ActionCount
}

// ActionCount pairs an action name with its count.
type ActionCount struct {
	Name  string
	Count int64
}

// TopSenderPairs returns the k senders with the most outgoing actions and,
// for each, their top receiver contracts (Figure 5).
func (a *EOSAggregator) TopSenderPairs(k, receiversPer int) []SenderProfile {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SenderProfile, 0, len(a.SentPairs))
	for sender, pairs := range a.SentPairs {
		p := SenderProfile{Sender: sender, UniqueReceivers: len(pairs)}
		for recv, n := range pairs {
			p.Sent += n
			p.Receivers = append(p.Receivers, ReceiverCount{Receiver: recv, Count: n})
		}
		sort.Slice(p.Receivers, func(i, j int) bool {
			if p.Receivers[i].Count != p.Receivers[j].Count {
				return p.Receivers[i].Count > p.Receivers[j].Count
			}
			return p.Receivers[i].Receiver < p.Receivers[j].Receiver
		})
		if receiversPer < len(p.Receivers) {
			p.Receivers = p.Receivers[:receiversPer]
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sent != out[j].Sent {
			return out[i].Sent > out[j].Sent
		}
		return out[i].Sender < out[j].Sender
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// SenderProfile is one Figure 5 row.
type SenderProfile struct {
	Sender          string
	Sent            int64
	UniqueReceivers int
	Receivers       []ReceiverCount
}

// ReceiverCount pairs a receiver with the actions sent to it.
type ReceiverCount struct {
	Receiver string
	Count    int64
}
