package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/rpcserve"
)

func tezosBlock(level int64, ts time.Time, ops ...rpcserve.TezosOperationJSON) *rpcserve.TezosBlockJSON {
	return &rpcserve.TezosBlockJSON{
		Level:      level,
		Timestamp:  ts.Format(time.RFC3339),
		Baker:      "tz1baker",
		Operations: ops,
	}
}

func TestTezosAggregatorShares(t *testing.T) {
	a := NewTezosAggregator(chain.ObservationStart, 6*time.Hour)
	ts := chain.ObservationStart
	var ops []rpcserve.TezosOperationJSON
	for i := 0; i < 23; i++ {
		ops = append(ops, rpcserve.TezosOperationJSON{Kind: "endorsement", Level: 1, SlotCount: 1})
	}
	ops = append(ops,
		rpcserve.TezosOperationJSON{Kind: "transaction", Source: "tz1a", Destination: "tz1b", Amount: 100},
		rpcserve.TezosOperationJSON{Kind: "transaction", Source: "tz1a", Destination: "tz1c", Amount: 100},
		rpcserve.TezosOperationJSON{Kind: "reveal", Source: "tz1a"},
		rpcserve.TezosOperationJSON{Kind: "seed_nonce_revelation"},
		rpcserve.TezosOperationJSON{Kind: "delegation", Source: "tz1a", Delegate: "tz1baker"},
	)
	if err := a.IngestBlock(tezosBlock(2, ts, ops...)); err != nil {
		t.Fatal(err)
	}
	if a.Operations != 28 {
		t.Fatalf("ops = %d", a.Operations)
	}
	if share := a.EndorsementShare(); share < 0.82 || share > 0.83 {
		t.Fatalf("endorsement share = %f (23/28)", share)
	}
	if cs := a.ConsensusShare(); cs <= a.EndorsementShare() {
		t.Fatalf("consensus share = %f", cs)
	}
	if got := a.Series.Total("Endorsement"); got != 23 {
		t.Fatalf("series endorsements = %d", got)
	}
	if got := a.Series.Total("Others"); got != 3 {
		t.Fatalf("series others = %d (reveal, seed nonce, delegation)", got)
	}
}

func TestTezosTopSendersFanOut(t *testing.T) {
	a := NewTezosAggregator(chain.ObservationStart, 6*time.Hour)
	ts := chain.ObservationStart
	var ops []rpcserve.TezosOperationJSON
	// Airdropper: one tx each to 100 receivers (avg 1, stdev 0).
	for i := 0; i < 100; i++ {
		ops = append(ops, rpcserve.TezosOperationJSON{
			Kind: "transaction", Source: "tz1airdrop",
			Destination: fmt.Sprintf("tz1recv%03d", i), Amount: 1,
		})
	}
	// Service: 30 txs each to 3 receivers (avg 30).
	for i := 0; i < 3; i++ {
		for j := 0; j < 30; j++ {
			ops = append(ops, rpcserve.TezosOperationJSON{
				Kind: "transaction", Source: "tz1service",
				Destination: fmt.Sprintf("tz1client%d", i), Amount: 5,
			})
		}
	}
	a.IngestBlock(tezosBlock(1, ts, ops...))

	top := a.TopSenders(2)
	if top[0].Sender != "tz1airdrop" || top[0].Sent != 100 || top[0].UniqueReceivers != 100 {
		t.Fatalf("airdropper: %+v", top[0])
	}
	if top[0].AvgPerReceiver != 1 || top[0].StdevPerReceiver != 0 {
		t.Fatalf("airdropper stats: %+v", top[0])
	}
	if top[1].Sender != "tz1service" || top[1].AvgPerReceiver != 30 {
		t.Fatalf("service: %+v", top[1])
	}
}

func TestTezosVoteSeries(t *testing.T) {
	a := NewTezosAggregator(chain.ObservationStart, 6*time.Hour)
	day := 24 * time.Hour
	base := time.Date(2019, 8, 9, 0, 0, 0, 0, time.UTC)
	a.IngestBlock(tezosBlock(1, base,
		rpcserve.TezosOperationJSON{Kind: "ballot", Source: "tz1b1", Proposal: "PsBabyM2", Ballot: "yay", Rolls: 500},
		rpcserve.TezosOperationJSON{Kind: "ballot", Source: "tz1b2", Proposal: "PsBabyM2", Ballot: "pass", Rolls: 100},
	))
	a.IngestBlock(tezosBlock(2, base.Add(3*day),
		rpcserve.TezosOperationJSON{Kind: "ballot", Source: "tz1b3", Proposal: "PsBabyM2", Ballot: "yay", Rolls: 800},
	))
	a.IngestBlock(tezosBlock(3, base.Add(5*day),
		rpcserve.TezosOperationJSON{Kind: "proposals", Source: "tz1b1", Proposal: "PsCarthage", Rolls: 700},
	))

	ballots := a.VoteSeries("ballot", day)
	if got := ballots.Total("yay"); got != 1300 {
		t.Fatalf("yay rolls = %d", got)
	}
	if got := ballots.Total("pass"); got != 100 {
		t.Fatalf("pass rolls = %d", got)
	}
	if got := ballots.Value(3, "yay"); got != 800 {
		t.Fatalf("day-3 yay = %d", got)
	}
	proposals := a.VoteSeries("proposals", day)
	if got := proposals.Total("PsCarthage"); got != 700 {
		t.Fatalf("proposal rolls = %d", got)
	}
	// Unknown kind yields an empty series.
	if empty := a.VoteSeries("nonsense", day); empty.TotalAll() != 0 {
		t.Fatal("nonsense series not empty")
	}
}
