package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rpcserve"
	"repro/internal/stats"
)

// TezosShard is the mutable aggregate state for a partition of Tezos
// blocks: one goroutine owns it, disjoint shards merge with Merge, and all
// of its statistics are order-independent (see EOSShard).
type TezosShard struct {
	Blocks     int64
	Operations int64

	OpsByKind map[string]int64  // Figure 1 rows
	Series    *stats.TimeSeries // Figure 3b: Endorsement / Transaction / Others

	// sentTo counts transaction operations per sender per receiver
	// (Figure 6 derives fan-out statistics from it).
	sentTo map[string]map[string]int64

	// Governance events (Figure 9). Slice order follows ingestion
	// interleaving; VoteSeries reduces it into time buckets
	// order-independently.
	Votes []GovernanceVote

	FirstBlockTime, LastBlockTime time.Time

	// covered is the block range this shard aggregated, when known (see
	// EOSShard.covered).
	covered BlockRange
}

// TezosAggregator ingests crawled Tezos blocks and accumulates Figure 1's
// operation-kind distribution, Figure 3b's throughput series, Figure 6's
// top-sender fan-out statistics and Figure 9's governance vote series. It
// is a thin locked wrapper around one TezosShard (see EOSAggregator).
type TezosAggregator struct {
	mu sync.Mutex
	TezosShard
}

// GovernanceVote is one proposals/ballot operation as observed on chain.
type GovernanceVote struct {
	Time     time.Time
	Level    int64
	Kind     string // "proposals" or "ballot"
	Proposal string
	Ballot   string // yay/nay/pass for ballots
	Rolls    int64
	Source   string
}

// NewTezosAggregator builds an empty aggregator.
func NewTezosAggregator(origin time.Time, bucket time.Duration) *TezosAggregator {
	a := &TezosAggregator{}
	a.TezosShard.init(origin, bucket)
	return a
}

// init allocates a shard's mutable containers.
func (s *TezosShard) init(origin time.Time, bucket time.Duration) {
	s.OpsByKind = make(map[string]int64)
	s.Series = stats.NewTimeSeries(origin, bucket)
	s.sentTo = make(map[string]map[string]int64)
}

// NewShard spawns an empty shard with the aggregator's series geometry,
// exclusively owned by the caller until MergeShard.
func (a *TezosAggregator) NewShard() *TezosShard {
	s := &TezosShard{}
	s.init(a.Series.Origin(), a.Series.Width())
	return s
}

// MergeShard folds a privately-owned shard into the aggregator under one
// lock acquisition and resets it.
func (a *TezosAggregator) MergeShard(s *TezosShard) {
	a.mu.Lock()
	a.TezosShard.merge(s)
	a.mu.Unlock()
}

// NewState spawns a private shard behind the ShardState contract.
func (a *TezosAggregator) NewState() ShardState { return a.NewShard() }

// MergeState folds a compatible ShardState into the aggregator under its
// lock.
func (a *TezosAggregator) MergeState(st ShardState) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.TezosShard.Merge(st)
}

// Chain names the shard's chain for the ShardState contract.
func (s *TezosShard) Chain() string { return "tezos" }

// Window returns the shard's time-series geometry.
func (s *TezosShard) Window() Window {
	return Window{Origin: s.Series.Origin(), Bucket: s.Series.Width()}
}

// Covered returns the block range this shard aggregated, when known.
func (s *TezosShard) Covered() BlockRange { return s.covered }

// SetCovered records the block range the shard aggregated.
func (s *TezosShard) SetCovered(r BlockRange) { s.covered = r }

// Merge implements ShardState: it validates chain, window and covered-range
// compatibility, then folds src into s and resets it.
func (s *TezosShard) Merge(src ShardState) error {
	typed, cov, err := mergeAsShard[*TezosShard](s, src)
	if err != nil {
		return err
	}
	s.merge(typed)
	s.covered = cov
	return nil
}

// merge folds src (covering disjoint blocks) into s and resets src.
func (s *TezosShard) merge(src *TezosShard) {
	s.Blocks += src.Blocks
	s.Operations += src.Operations
	mergeCounts(s.OpsByKind, src.OpsByKind)
	s.Series.Merge(src.Series)
	mergeNested(s.sentTo, src.sentTo)
	s.Votes = append(s.Votes, src.Votes...)
	mergeWindow(&s.FirstBlockTime, &s.LastBlockTime, src.FirstBlockTime, src.LastBlockTime)
	origin, width := src.Series.Origin(), src.Series.Width()
	*src = TezosShard{}
	src.init(origin, width)
}

// IngestBlock folds one crawled block into the aggregate. Safe for
// concurrent use.
func (a *TezosAggregator) IngestBlock(b *rpcserve.TezosBlockJSON) error {
	return a.IngestBlocks([]*rpcserve.TezosBlockJSON{b})
}

// IngestBlocks folds a batch of blocks under a single lock acquisition.
// Timestamps are parsed before the lock is taken; a malformed block fails
// the whole batch without ingesting any of it.
func (a *TezosAggregator) IngestBlocks(bs []*rpcserve.TezosBlockJSON) error {
	times := make([]time.Time, len(bs))
	for i, b := range bs {
		ts, err := time.Parse(time.RFC3339, b.Timestamp)
		if err != nil {
			return err
		}
		times[i] = ts
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, b := range bs {
		a.TezosShard.ingest(b, times[i])
	}
	return nil
}

// tezosBatch asserts and pre-parses an ingest-pool batch (see eosBatch).
func tezosBatch(batch []any) ([]*rpcserve.TezosBlockJSON, []time.Time, error) {
	blocks := make([]*rpcserve.TezosBlockJSON, len(batch))
	times := make([]time.Time, len(batch))
	for i, v := range batch {
		b, ok := v.(*rpcserve.TezosBlockJSON)
		if !ok {
			return nil, nil, fmt.Errorf("core: tezos batch element %d is %T, not *rpcserve.TezosBlockJSON", i, v)
		}
		ts, err := time.Parse(time.RFC3339, b.Timestamp)
		if err != nil {
			return nil, nil, err
		}
		blocks[i], times[i] = b, ts
	}
	return blocks, times, nil
}

// IngestBatch folds a batch of decoded blocks into a privately-owned shard
// — no locking; the shard's owner is the only writer.
func (s *TezosShard) IngestBatch(batch []any) error {
	blocks, times, err := tezosBatch(batch)
	if err != nil {
		return err
	}
	for i, b := range blocks {
		s.ingest(b, times[i])
	}
	return nil
}

// IngestBatch folds a batch of decoded blocks into the aggregator, one
// lock acquisition for the whole batch.
func (a *TezosAggregator) IngestBatch(batch []any) error {
	blocks, times, err := tezosBatch(batch)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, b := range blocks {
		a.TezosShard.ingest(b, times[i])
	}
	return nil
}

// ingest folds one block into the shard; the caller owns the shard.
func (a *TezosShard) ingest(b *rpcserve.TezosBlockJSON, ts time.Time) {
	a.Blocks++
	if a.FirstBlockTime.IsZero() || ts.Before(a.FirstBlockTime) {
		a.FirstBlockTime = ts
	}
	if ts.After(a.LastBlockTime) {
		a.LastBlockTime = ts
	}
	for _, op := range b.Operations {
		a.Operations++
		a.OpsByKind[op.Kind]++
		a.Series.Add(ts, tezosSeriesLabel(op.Kind), 1)
		switch op.Kind {
		case "transaction":
			m := a.sentTo[op.Source]
			if m == nil {
				m = make(map[string]int64)
				a.sentTo[op.Source] = m
			}
			m[op.Destination]++
		case "proposals", "ballot":
			a.Votes = append(a.Votes, GovernanceVote{
				Time: ts, Level: b.Level, Kind: op.Kind,
				Proposal: op.Proposal, Ballot: op.Ballot,
				Rolls: op.Rolls, Source: op.Source,
			})
		}
	}
}

func tezosSeriesLabel(kind string) string {
	switch kind {
	case "endorsement":
		return "Endorsement"
	case "transaction":
		return "Transaction"
	default:
		return "Others"
	}
}

// EndorsementShare returns the fraction of operations that are endorsements
// (the paper: 81.7 %).
func (a *TezosAggregator) EndorsementShare() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Operations == 0 {
		return 0
	}
	return float64(a.OpsByKind["endorsement"]) / float64(a.Operations)
}

// ConsensusShare returns the fraction of consensus-related operations
// (endorsements + seed nonces + double-baking evidence).
func (a *TezosAggregator) ConsensusShare() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Operations == 0 {
		return 0
	}
	n := a.OpsByKind["endorsement"] + a.OpsByKind["seed_nonce_revelation"] +
		a.OpsByKind["double_baking_evidence"]
	return float64(n) / float64(a.Operations)
}

// TezosSenderProfile is one Figure 6 row: fan-out statistics of a sender.
type TezosSenderProfile struct {
	Sender           string
	Sent             int64
	UniqueReceivers  int
	AvgPerReceiver   float64
	StdevPerReceiver float64
}

// TopSenders returns the k most active transaction senders with their
// per-receiver average and standard deviation (Figure 6). The paper uses
// these statistics to distinguish airdrop-style fan-out (one tx to tens of
// thousands of receivers) from service traffic.
func (a *TezosAggregator) TopSenders(k int) []TezosSenderProfile {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TezosSenderProfile, 0, len(a.sentTo))
	for sender, receivers := range a.sentTo {
		var w stats.Welford
		var sent int64
		for _, n := range receivers {
			w.Add(float64(n))
			sent += n
		}
		out = append(out, TezosSenderProfile{
			Sender:           sender,
			Sent:             sent,
			UniqueReceivers:  len(receivers),
			AvgPerReceiver:   w.Mean(),
			StdevPerReceiver: w.SampleStdev(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sent != out[j].Sent {
			return out[i].Sent > out[j].Sent
		}
		return out[i].Sender < out[j].Sender
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// VoteSeries aggregates governance votes into cumulative per-day counts for
// one period kind, keyed by the series label (proposal hash during proposal
// periods, ballot choice during voting periods). This reproduces the three
// panels of Figure 9.
func (a *TezosAggregator) VoteSeries(kind string, bucket time.Duration) *stats.TimeSeries {
	a.mu.Lock()
	defer a.mu.Unlock()
	var first time.Time
	for _, v := range a.Votes {
		if v.Kind != kind {
			continue
		}
		if first.IsZero() || v.Time.Before(first) {
			first = v.Time
		}
	}
	if first.IsZero() {
		return stats.NewTimeSeries(time.Unix(0, 0).UTC(), bucket)
	}
	s := stats.NewTimeSeries(first, bucket)
	for _, v := range a.Votes {
		if v.Kind != kind {
			continue
		}
		label := v.Proposal
		if v.Kind == "ballot" {
			label = v.Ballot
		}
		s.Add(v.Time, label, v.Rolls)
	}
	return s
}
