package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"
	"time"

	"repro/internal/blobstore"
	"repro/internal/chain"
	"repro/internal/wire"
	"repro/internal/xrp"
)

// encodeState is a test helper: one shard state to a sealed blob.
func encodeState(t testing.TB, st ShardState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testShardCodecRoundTrip is the tentpole property at unit scale: split a
// block set into contiguous partitions, ingest each into its own
// ShardState, encode → decode every shard, merge the decoded copies, and
// the merged figures must be byte-identical to a single state that
// ingested everything. It also asserts decode→re-encode reproduces the
// original blob bit-for-bit — the codec is canonical, not just faithful.
func testShardCodecRoundTrip[B any](t *testing.T, chainName string, blocks []B) {
	t.Helper()
	single, err := NewShardState(chainName, chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.IngestBatch(asBatch(blocks)); err != nil {
		t.Fatal(err)
	}
	single.SetCovered(BlockRange{From: 1, To: int64(len(blocks))})
	want := single.Summary().Render()
	if want == "" {
		t.Fatal("baseline render is empty — generator produced no data")
	}

	for _, parts := range []int{1, 2, 3, 5} {
		var decoded []ShardState
		per := (len(blocks) + parts - 1) / parts
		for i := 0; i < parts; i++ {
			lo, hi := i*per, (i+1)*per
			if hi > len(blocks) {
				hi = len(blocks)
			}
			st, err := NewShardState(chainName, chain.ObservationStart, 6*time.Hour)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.IngestBatch(asBatch(blocks[lo:hi])); err != nil {
				t.Fatal(err)
			}
			st.SetCovered(BlockRange{From: int64(lo + 1), To: int64(hi)})
			blob := encodeState(t, st)

			dec, err := DecodeShard(blob)
			if err != nil {
				t.Fatalf("%d-way partition %d: decode: %v", parts, i, err)
			}
			if dec.Chain() != chainName {
				t.Fatalf("decoded chain %q, want %q", dec.Chain(), chainName)
			}
			if got, want := dec.Covered(), st.Covered(); got != want {
				t.Fatalf("decoded covered range %s, want %s", got, want)
			}
			// Canonical: re-encoding the decoded state reproduces the blob.
			if reblob := encodeState(t, dec); !bytes.Equal(reblob, blob) {
				t.Fatalf("%d-way partition %d: decode→re-encode is not byte-identical (%d vs %d bytes)",
					parts, i, len(reblob), len(blob))
			}
			decoded = append(decoded, dec)
		}
		merged, err := MergeShards(decoded)
		if err != nil {
			t.Fatalf("%d-way merge: %v", parts, err)
		}
		if got := merged.Summary().Render(); got != want {
			t.Fatalf("%d-way sharded render diverged\n--- single ---\n%s\n--- merged ---\n%s", parts, want, got)
		}
		if got, want := merged.Covered(), (BlockRange{From: 1, To: int64(len(blocks))}); got != want {
			t.Fatalf("merged covered range %s, want %s", got, want)
		}
	}
}

func TestShardCodecRoundTripEOS(t *testing.T) {
	testShardCodecRoundTrip(t, "eos", genEOSBlocks(64))
}

func TestShardCodecRoundTripTezos(t *testing.T) {
	testShardCodecRoundTrip(t, "tezos", genTezosBlocks(64))
}

func TestShardCodecRoundTripXRP(t *testing.T) {
	testShardCodecRoundTrip(t, "xrp", genXRPLedgers(64))
}

// TestShardCodecXRPExchanges covers the aggregator-only exchange records:
// an XRP shard that absorbed explorer exchanges must carry them through
// encode/decode (they feed the rate oracle behind Figure 7).
func TestShardCodecXRPExchanges(t *testing.T) {
	agg := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	if err := agg.IngestLedgers(genXRPLedgers(16)); err != nil {
		t.Fatal(err)
	}
	agg.AddExchanges(genExchanges(8))
	agg.XRPShard.SetCovered(BlockRange{From: 1, To: 16})
	blob := encodeState(t, &agg.XRPShard)
	dec, err := DecodeShard(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(dec.(*XRPShard).exchanges), len(agg.exchanges); got != want {
		t.Fatalf("decoded %d exchanges, want %d", got, want)
	}
	if got, want := dec.Summary().Render(), agg.XRPShard.Summary().Render(); got != want {
		t.Fatalf("render diverged after exchange round-trip\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestShardDecodeRejectsDamage: every structural failure mode errors and
// none panics — truncation at each length, a flipped bit at each byte, a
// future version, trailing junk, and a chain mismatch.
func TestShardDecodeRejectsDamage(t *testing.T) {
	st, err := NewShardState("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.IngestBatch(asBatch(genEOSBlocks(8))); err != nil {
		t.Fatal(err)
	}
	st.SetCovered(BlockRange{From: 1, To: 8})
	blob := encodeState(t, st)

	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(blob); n++ {
			if _, err := DecodeShard(blob[:n]); err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(blob))
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for i := range blob {
			dam := bytes.Clone(blob)
			dam[i] ^= 0x40
			if _, err := DecodeShard(dam); err == nil {
				t.Fatalf("flipping a bit in byte %d/%d decoded without error", i, len(blob))
			}
		}
	})
	t.Run("trailing junk", func(t *testing.T) {
		if _, err := DecodeShard(append(bytes.Clone(blob), 0xAB)); err == nil {
			t.Fatal("trailing junk decoded without error")
		}
	})
	t.Run("future version", func(t *testing.T) {
		// Hand-seal an envelope with a version this build does not read;
		// checksum and structure are otherwise valid.
		future := []byte(wire.ShardMagic)
		future = binary.AppendUvarint(future, wire.ShardVersion+1)
		future = binary.AppendUvarint(future, uint64(len("eos")))
		future = append(future, "eos"...)
		future = binary.AppendUvarint(future, 3)
		future = append(future, 1, 2, 3)
		future = binary.LittleEndian.AppendUint32(future, crc32.ChecksumIEEE(future))
		_, err := DecodeShard(future)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("future version error = %v, want version error", err)
		}
	})
	t.Run("chain mismatch", func(t *testing.T) {
		other := &TezosShard{}
		other.init(chain.ObservationStart, 6*time.Hour)
		if err := other.DecodeFrom(bytes.NewReader(blob)); err == nil {
			t.Fatal("decoding an eos blob into a tezos shard succeeded")
		}
	})
	t.Run("unknown chain", func(t *testing.T) {
		alien := wire.SealShard("doge", []byte{1, 2, 3})
		if _, err := DecodeShard(alien); err == nil {
			t.Fatal("unknown-chain blob decoded without error")
		}
	})
}

// TestMergeShardsValidation exercises the coordinator's refusal matrix.
func TestMergeShardsValidation(t *testing.T) {
	mk := func(chainName string, from, to int64, origin time.Time, bucket time.Duration) ShardState {
		st, err := NewShardState(chainName, origin, bucket)
		if err != nil {
			t.Fatal(err)
		}
		if from > 0 {
			st.SetCovered(BlockRange{From: from, To: to})
		}
		return st
	}
	o := chain.ObservationStart
	cases := []struct {
		name    string
		shards  []ShardState
		wantErr string
	}{
		{"empty", nil, "no shards"},
		{"chain mismatch", []ShardState{mk("eos", 1, 10, o, time.Hour), mk("tezos", 11, 20, o, time.Hour)}, "different chains"},
		{"window mismatch", []ShardState{mk("eos", 1, 10, o, time.Hour), mk("eos", 11, 20, o, 2*time.Hour)}, "mismatched windows"},
		{"unknown range", []ShardState{mk("eos", 1, 10, o, time.Hour), mk("eos", 0, 0, o, time.Hour)}, "no covered block range"},
		{"overlap", []ShardState{mk("eos", 1, 10, o, time.Hour), mk("eos", 10, 20, o, time.Hour)}, "overlap"},
		{"gap", []ShardState{mk("eos", 1, 10, o, time.Hour), mk("eos", 12, 20, o, time.Hour)}, "gap"},
		{"contiguous ok", []ShardState{mk("eos", 11, 20, o, time.Hour), mk("eos", 1, 10, o, time.Hour)}, ""},
		{"single ok", []ShardState{mk("xrp", 5, 9, o, time.Hour)}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MergeShards(tc.shards)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestEmitShardCrossBackend: the same shard state emitted to mem:// and
// file:// stores lands byte-identical — the blob depends only on the
// state, never on the backend.
func TestEmitShardCrossBackend(t *testing.T) {
	ctx := context.Background()
	st, err := NewShardState("tezos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.IngestBatch(asBatch(genTezosBlocks(32))); err != nil {
		t.Fatal(err)
	}
	st.SetCovered(BlockRange{From: 1, To: 32})

	locations := []string{
		"mem://shard-cross-backend",
		"file://" + t.TempDir(),
	}
	var blobs [][]byte
	for _, loc := range locations {
		key, err := EmitShard(ctx, loc, st)
		if err != nil {
			t.Fatalf("emit to %s: %v", loc, err)
		}
		store, err := blobstore.Resolve(loc)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := store.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)

		loaded, err := LoadShards(ctx, loc)
		if err != nil {
			t.Fatal(err)
		}
		if len(loaded) != 1 {
			t.Fatalf("loaded %d shards from %s, want 1", len(loaded), loc)
		}
		if got, want := loaded[0].Summary().Render(), st.Summary().Render(); got != want {
			t.Fatalf("render diverged after %s round-trip", loc)
		}
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("mem:// and file:// shard blobs differ (%d vs %d bytes)", len(blobs[0]), len(blobs[1]))
	}
}

// TestEmitShardRequiresRange: emitting a shard that never learned its
// partition must refuse — the coordinator could not validate it.
func TestEmitShardRequiresRange(t *testing.T) {
	st, err := NewShardState("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EmitShard(context.Background(), "mem://shard-no-range", st); err == nil {
		t.Fatal("emitting a shard without a covered range succeeded")
	}
}

// FuzzShardDecode drives arbitrary bytes through the whole decode path:
// any input may error but must never panic, and anything that decodes must
// re-encode cleanly (no partially-initialized state escapes).
func FuzzShardDecode(f *testing.F) {
	for _, seed := range [][]byte{
		{}, []byte("SHRD"), []byte("not a shard at all"),
	} {
		f.Add(seed)
	}
	eos, _ := NewShardState("eos", chain.ObservationStart, 6*time.Hour)
	_ = eos.IngestBatch(asBatch(genEOSBlocks(4)))
	eos.SetCovered(BlockRange{From: 1, To: 4})
	tez, _ := NewShardState("tezos", chain.ObservationStart, 6*time.Hour)
	_ = tez.IngestBatch(asBatch(genTezosBlocks(4)))
	tez.SetCovered(BlockRange{From: 1, To: 4})
	xr, _ := NewShardState("xrp", chain.ObservationStart, 6*time.Hour)
	_ = xr.IngestBatch(asBatch(genXRPLedgers(4)))
	xr.SetCovered(BlockRange{From: 1, To: 4})
	for _, st := range []ShardState{eos, tez, xr} {
		var buf bytes.Buffer
		if err := st.EncodeTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		st, err := DecodeShard(blob)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := st.EncodeTo(&buf); err != nil {
			t.Fatalf("decoded state failed to re-encode: %v", err)
		}
		_ = st.Summary().Render()
	})
}

// benchState builds one populated shard state per chain for the codec
// benchmarks — the same generators the round-trip property tests use, so
// the benchmarked payload mirrors a real drained shard.
func benchState(b *testing.B, chainName string) ShardState {
	b.Helper()
	st, err := NewShardState(chainName, chain.ObservationStart, 6*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	var batch []any
	switch chainName {
	case "eos":
		batch = asBatch(genEOSBlocks(64))
	case "tezos":
		batch = asBatch(genTezosBlocks(64))
	case "xrp":
		batch = asBatch(genXRPLedgers(64))
	}
	if err := st.IngestBatch(batch); err != nil {
		b.Fatal(err)
	}
	st.SetCovered(BlockRange{From: 1, To: 64})
	return st
}

// BenchmarkShardEncode measures serializing a drained shard state into a
// sealed blob — the per-shard cost a distributed crawl pays at exit.
func BenchmarkShardEncode(b *testing.B) {
	for _, chainName := range []string{"eos", "tezos", "xrp"} {
		b.Run(chainName, func(b *testing.B) {
			st := benchState(b, chainName)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := st.EncodeTo(&buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardDecode measures the coordinator's per-shard cost: open the
// envelope, validate, and rebuild the state.
func BenchmarkShardDecode(b *testing.B) {
	for _, chainName := range []string{"eos", "tezos", "xrp"} {
		b.Run(chainName, func(b *testing.B) {
			st := benchState(b, chainName)
			var buf bytes.Buffer
			if err := st.EncodeTo(&buf); err != nil {
				b.Fatal(err)
			}
			blob := buf.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeShard(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardMerge measures the coordinator folding three decoded
// shards into one state. Merge consumes its sources, so each iteration
// decodes fresh copies; subtract BenchmarkShardDecode×3 for the pure
// merge cost.
func BenchmarkShardMerge(b *testing.B) {
	for _, chainName := range []string{"eos", "tezos", "xrp"} {
		b.Run(chainName, func(b *testing.B) {
			blobs := make([][]byte, 3)
			for i := range blobs {
				st, err := NewShardState(chainName, chain.ObservationStart, 6*time.Hour)
				if err != nil {
					b.Fatal(err)
				}
				var batch []any
				switch chainName {
				case "eos":
					batch = asBatch(genEOSBlocks(64))
				case "tezos":
					batch = asBatch(genTezosBlocks(64))
				case "xrp":
					batch = asBatch(genXRPLedgers(64))
				}
				if err := st.IngestBatch(batch); err != nil {
					b.Fatal(err)
				}
				st.SetCovered(BlockRange{From: int64(64*i + 1), To: int64(64 * (i + 1))})
				var buf bytes.Buffer
				if err := st.EncodeTo(&buf); err != nil {
					b.Fatal(err)
				}
				blobs[i] = buf.Bytes()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shards := make([]ShardState, len(blobs))
				for j, blob := range blobs {
					st, err := DecodeShard(blob)
					if err != nil {
						b.Fatal(err)
					}
					shards[j] = st
				}
				if _, err := MergeShards(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// genExchanges fabricates explorer exchange records for the XRP tests.
func genExchanges(n int) []xrp.Exchange {
	out := make([]xrp.Exchange, n)
	for i := range out {
		out[i] = xrp.Exchange{
			Time:          chain.ObservationStart.Add(time.Duration(i) * time.Hour),
			LedgerIndex:   int64(i + 1),
			Base:          xrp.AssetKey{Currency: "BTC", Issuer: "rGateway"},
			Counter:       xrp.AssetKey{Currency: "XRP"},
			BaseValue:     int64(1_000_000 + i),
			CounterValue:  int64(9_000_000 * (i + 1)),
			Maker:         xrp.Address(fmt.Sprintf("rMaker%d", i%3)),
			Taker:         xrp.Address(fmt.Sprintf("rTaker%d", i%2)),
			MakerSequence: uint32(100 + i),
		}
	}
	return out
}
