package core

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/archive"
)

// IngestArchive replays an archived crawl straight into the decoder: the
// archive's segments fan out across cfg.Workers goroutines (0 means one
// per CPU — replay is CPU-bound, unlike a live crawl), each decoding its
// segment's records in place and folding them into a private shard when d
// is a ShardedDecoder. Each worker batches cfg.Batch decoded blocks
// between shard folds so arena structs recycle in bulk; the shards merge
// in worker order after the walk, so the whole replay takes exactly
// cfg.Workers aggregator lock acquisitions. A non-sharded decoder falls
// back to batched IngestBatch under the aggregator lock.
//
// Compared with driving collect.Stream over the Reader's FetchBlock, this
// path skips the per-block copy, the channel hop and the segment-cache
// contention: raw payloads alias the decompressed segment and are decoded
// where they lie (the wire codecs copy every string they keep). The
// resulting aggregate is identical either way — and identical to the live
// crawl's — because every aggregate is order-independent.
//
// It returns the number of blocks ingested and the first
// decode/ingest/corruption error.
func IngestArchive(ctx context.Context, rd *archive.Reader, d Decoder, cfg IngestConfig) (int64, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batchCap := cfg.Batch
	if batchCap <= 0 {
		batchCap = 16
	}
	sharded, _ := d.(ShardedDecoder)
	releaser, _ := d.(BatchReleaser)
	shards := make([]Shard, workers)
	if sharded != nil {
		for w := range shards {
			shards[w] = sharded.NewShard()
		}
	}
	batches := make([][]any, workers)
	for w := range batches {
		batches[w] = make([]any, 0, batchCap)
	}
	var ingested int64
	// flush folds worker w's pending batch into its shard (or the locked
	// aggregator) and recycles the decoded structs. Called from the
	// worker's own goroutine during the replay, and from the caller's
	// goroutine for the remainders once Replay has returned.
	flush := func(w int) error {
		batch := batches[w]
		if len(batch) == 0 {
			return nil
		}
		var err error
		if sharded != nil {
			err = shards[w].IngestBatch(batch)
		} else {
			err = d.IngestBatch(batch)
		}
		if err != nil {
			return err
		}
		atomic.AddInt64(&ingested, int64(len(batch)))
		if releaser != nil {
			releaser.ReleaseBatch(batch)
		}
		batches[w] = batch[:0]
		return nil
	}
	err := rd.Replay(ctx, workers, func(w int, num int64, raw []byte) error {
		dec, derr := d.Decode(num, raw)
		if derr != nil {
			return fmt.Errorf("core: decoding block %d: %w", num, derr)
		}
		batches[w] = append(batches[w], dec)
		if len(batches[w]) >= batchCap {
			return flush(w)
		}
		return nil
	})
	// Drain the remainders and merge the shards — in worker order, and
	// even after an error, for parity with IngestStream's partial
	// aggregate semantics.
	for w := range batches {
		if ferr := flush(w); ferr != nil && err == nil {
			err = ferr
		}
	}
	for _, s := range shards {
		if s != nil {
			s.Merge()
		}
	}
	return atomic.LoadInt64(&ingested), err
}
