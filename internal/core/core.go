package core
