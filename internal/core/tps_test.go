package core

import (
	"math"
	"testing"
	"time"
)

func TestObservedTPS(t *testing.T) {
	start := time.Date(2019, time.October, 1, 0, 0, 0, 0, time.UTC)

	t.Run("zero-duration window", func(t *testing.T) {
		if tps := ObservedTPS(1000, start, start); tps != 0 {
			t.Fatalf("ObservedTPS over empty window = %f, want 0", tps)
		}
	})
	t.Run("inverted window", func(t *testing.T) {
		if tps := ObservedTPS(1000, start, start.Add(-time.Hour)); tps != 0 {
			t.Fatalf("ObservedTPS over inverted window = %f, want 0", tps)
		}
	})
	t.Run("simple rate", func(t *testing.T) {
		// 7200 transactions over one hour is 2 TPS.
		got := ObservedTPS(7200, start, start.Add(time.Hour))
		if math.Abs(got-2) > 1e-9 {
			t.Fatalf("ObservedTPS = %f, want 2", got)
		}
	})
	t.Run("paper window", func(t *testing.T) {
		// The paper's 92-day window at EOS's ~20 TPS headline.
		end := start.AddDate(0, 0, 92)
		txs := int64(20 * 92 * 24 * 3600)
		got := ObservedTPS(txs, start, end)
		if math.Abs(got-20) > 1e-9 {
			t.Fatalf("ObservedTPS = %f, want 20", got)
		}
	})
}

func TestEstimatedFullScaleTPS(t *testing.T) {
	start := time.Date(2019, time.October, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Hour)

	t.Run("scale one is identity", func(t *testing.T) {
		obs := ObservedTPS(3600, start, end)
		est := EstimatedFullScaleTPS(3600, start, end, 1)
		if est != obs {
			t.Fatalf("scale=1 estimate %f != observed %f", est, obs)
		}
	})
	t.Run("scaled-up estimate", func(t *testing.T) {
		// A run at scale divisor 50 000 carries 1/50 000 of main-net
		// traffic, so the estimate multiplies back up.
		est := EstimatedFullScaleTPS(3600, start, end, 50_000)
		if math.Abs(est-50_000) > 1e-6 {
			t.Fatalf("estimate = %f, want 50000", est)
		}
	})
	t.Run("non-positive scale clamps to one", func(t *testing.T) {
		obs := ObservedTPS(3600, start, end)
		for _, scale := range []int64{0, -7} {
			if est := EstimatedFullScaleTPS(3600, start, end, scale); est != obs {
				t.Fatalf("scale=%d estimate %f, want observed %f", scale, est, obs)
			}
		}
	})
	t.Run("zero-duration window stays zero", func(t *testing.T) {
		if est := EstimatedFullScaleTPS(3600, start, start, 50_000); est != 0 {
			t.Fatalf("estimate over empty window = %f, want 0", est)
		}
	})
}
