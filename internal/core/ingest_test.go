package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/rpcserve"
)

// makeEOSRawBlocks synthesizes raw nodeos-style block JSON: one transfer
// transaction per action slot, timestamps inside the observation window.
func makeEOSRawBlocks(t testing.TB, n, txsPerBlock int) [][]byte {
	t.Helper()
	raws := make([][]byte, n)
	for i := 0; i < n; i++ {
		blk := rpcserve.EOSBlockJSON{
			BlockNum:  uint32(i + 1),
			Timestamp: chain.ObservationStart.Add(time.Duration(i) * time.Minute).Format("2006-01-02T15:04:05.000"),
			Producer:  "eosio",
		}
		for j := 0; j < txsPerBlock; j++ {
			var trx rpcserve.EOSTrxJSON
			trx.Status = "executed"
			trx.Trx.Transaction.Actions = []rpcserve.EOSActionJSON{{
				Account: "eosio.token", Name: "transfer",
				Authorization: []map[string]string{{"actor": "alice"}},
				Data: map[string]string{
					"from": "alice", "to": "bob",
					"quantity": "1.0000 EOS",
				},
			}}
			blk.Transactions = append(blk.Transactions, trx)
		}
		raw, err := json.Marshal(blk)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	return raws
}

// memFetcher serves pre-marshaled blocks; it isolates ingestion cost from
// the network in tests and benchmarks.
type memFetcher struct{ raws [][]byte }

func (f *memFetcher) Head(ctx context.Context) (int64, error) { return int64(len(f.raws)), nil }

func (f *memFetcher) FetchBlock(ctx context.Context, num int64) ([]byte, error) {
	if num < 1 || num > int64(len(f.raws)) {
		return nil, fmt.Errorf("memFetcher: no block %d", num)
	}
	return f.raws[num-1], nil
}

// TestIngestStreamMatchesPerBlockIngest: the batched decode pool must
// produce exactly the same aggregate as driving the Ingestor one block at a
// time.
func TestIngestStreamMatchesPerBlockIngest(t *testing.T) {
	raws := makeEOSRawBlocks(t, 64, 3)

	one := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	ing := NewIngestor(EOSDecoder{Agg: one})
	for i, raw := range raws {
		if err := ing.IngestRaw(int64(i+1), raw); err != nil {
			t.Fatal(err)
		}
	}

	batched := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	blocks, handle := collect.Stream(context.Background(), &memFetcher{raws}, collect.CrawlConfig{Workers: 4, Buffer: 8})
	n, err := IngestStream(context.Background(), blocks, EOSDecoder{Agg: batched}, IngestConfig{Workers: 3, Batch: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := handle.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != int64(len(raws)) {
		t.Fatalf("IngestStream ingested %d blocks, want %d", n, len(raws))
	}
	if one.Blocks != batched.Blocks || one.Transactions != batched.Transactions || one.Actions != batched.Actions {
		t.Fatalf("batched aggregate diverged: per-block {%d %d %d} vs batched {%d %d %d}",
			one.Blocks, one.Transactions, one.Actions,
			batched.Blocks, batched.Transactions, batched.Actions)
	}
	if one.TransferShare() != batched.TransferShare() {
		t.Fatalf("transfer share diverged: %f vs %f", one.TransferShare(), batched.TransferShare())
	}
}

// countingDecoder wraps a Decoder and records batch sizes.
type countingDecoder struct {
	inner   Decoder
	mu      sync.Mutex
	batches []int
}

func (d *countingDecoder) Decode(num int64, raw []byte) (any, error) { return d.inner.Decode(num, raw) }

func (d *countingDecoder) IngestBatch(batch []any) error {
	d.mu.Lock()
	d.batches = append(d.batches, len(batch))
	d.mu.Unlock()
	return d.inner.IngestBatch(batch)
}

// TestIngestStreamBatches: lock acquisitions must be amortized — far fewer
// IngestBatch calls than blocks, and no batch above the configured cap.
func TestIngestStreamBatches(t *testing.T) {
	raws := makeEOSRawBlocks(t, 96, 1)
	agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	dec := &countingDecoder{inner: EOSDecoder{Agg: agg}}
	blocks, handle := collect.Stream(context.Background(), &memFetcher{raws}, collect.CrawlConfig{Workers: 2, Buffer: 32})
	if _, err := IngestStream(context.Background(), blocks, dec, IngestConfig{Workers: 1, Batch: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := handle.Wait(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range dec.batches {
		if b > 16 {
			t.Fatalf("batch of %d exceeds configured cap 16", b)
		}
		total += b
	}
	if total != 96 {
		t.Fatalf("batches cover %d blocks, want 96", total)
	}
	if len(dec.batches) > 96/8 {
		t.Fatalf("%d lock acquisitions for 96 blocks — batching is not amortizing", len(dec.batches))
	}
}

// TestIngestStreamDecodeErrorStops: a corrupt payload must surface as the
// ingest error without wedging the pool.
func TestIngestStreamDecodeErrorStops(t *testing.T) {
	raws := makeEOSRawBlocks(t, 10, 1)
	raws[4] = []byte("{corrupt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocks, handle := collect.Stream(ctx, &memFetcher{raws}, collect.CrawlConfig{Workers: 1, Buffer: 2})
	agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	_, err := IngestStream(ctx, blocks, EOSDecoder{Agg: agg}, IngestConfig{Workers: 1, Batch: 4})
	if err == nil {
		t.Fatal("corrupt block ingested without error")
	}
	cancel() // the documented contract: cancel the stream after an ingest error
	if _, werr := handle.Wait(); werr == nil && err == nil {
		t.Fatal("no error surfaced anywhere")
	}
}

// TestDecodersRoundTripAllChains: each chain's Decoder must accept its own
// wire format and reject the others'.
func TestDecodersRoundTripAllChains(t *testing.T) {
	tezosRaw, err := json.Marshal(rpcserve.TezosBlockJSON{
		Level: 7, Timestamp: chain.ObservationStart.Format(time.RFC3339),
		Operations: []rpcserve.TezosOperationJSON{{Kind: "endorsement", Source: "tz1abc"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tezosAgg := NewTezosAggregator(chain.ObservationStart, 6*time.Hour)
	if err := NewIngestor(TezosDecoder{Agg: tezosAgg}).IngestRaw(7, tezosRaw); err != nil {
		t.Fatal(err)
	}
	if tezosAgg.Blocks != 1 || tezosAgg.Operations != 1 {
		t.Fatalf("tezos ingest: %d blocks %d ops", tezosAgg.Blocks, tezosAgg.Operations)
	}

	xrpRaw := []byte(fmt.Sprintf(`{"ledger":{"ledger_index":3,"close_time_human":%q,"transactions":[{"TransactionType":"Payment","Account":"rAlice","Destination":"rBob","meta_TransactionResult":"tesSUCCESS","Amount":{"currency":"XRP","value":5}}]}}`,
		chain.ObservationStart.Format(time.RFC3339)))
	xrpAgg := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	if err := NewIngestor(XRPDecoder{Agg: xrpAgg}).IngestRaw(3, xrpRaw); err != nil {
		t.Fatal(err)
	}
	if xrpAgg.Ledgers != 1 || xrpAgg.Transactions != 1 {
		t.Fatalf("xrp ingest: %d ledgers %d txs", xrpAgg.Ledgers, xrpAgg.Transactions)
	}

	eosAgg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	if err := NewIngestor(EOSDecoder{Agg: eosAgg}).IngestRaw(1, []byte(`not json`)); err == nil {
		t.Fatal("EOS decoder accepted garbage")
	}
}

// lockedDecoder hides EOSDecoder's NewShard so IngestStream takes the
// legacy shared-aggregator path: every batch under the one mutex. It keeps
// forwarding ReleaseBatch so both paths recycle arena structs identically.
type lockedDecoder struct{ Decoder }

func (d lockedDecoder) ReleaseBatch(batch []any) {
	if r, ok := d.Decoder.(BatchReleaser); ok {
		r.ReleaseBatch(batch)
	}
}

// TestIngestStreamShardedMatchesLocked: the per-worker-shard path must
// aggregate exactly like the locked path it replaced.
func TestIngestStreamShardedMatchesLocked(t *testing.T) {
	raws := makeEOSRawBlocks(t, 96, 3)
	ctx := context.Background()
	run := func(d func(*EOSAggregator) Decoder) *EOSAggregator {
		agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
		blocks, handle := collect.Stream(ctx, &memFetcher{raws}, collect.CrawlConfig{Workers: 4, Buffer: 16})
		n, err := IngestStream(ctx, blocks, d(agg), IngestConfig{Workers: 3, Batch: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := handle.Wait(); err != nil {
			t.Fatal(err)
		}
		if n != int64(len(raws)) {
			t.Fatalf("ingested %d blocks, want %d", n, len(raws))
		}
		return agg
	}
	locked := run(func(a *EOSAggregator) Decoder { return lockedDecoder{EOSDecoder{Agg: a}} })
	sharded := run(func(a *EOSAggregator) Decoder { return EOSDecoder{Agg: a} })
	if lr, sr := SummarizeEOS(locked).Render(), SummarizeEOS(sharded).Render(); lr != sr {
		t.Fatalf("sharded stream ingest diverged from locked\n--- locked ---\n%s\n--- sharded ---\n%s", lr, sr)
	}
}

// BenchmarkShardedIngest isolates the tentpole's contention win: the same
// stream drained by the legacy locked path (every batch serializing on the
// aggregator mutex) versus per-worker shards merged once at drain. On a
// single CPU the two are near parity — the lock is never contended — and
// on a multi-core runner the sharded side scales with the worker count.
func BenchmarkShardedIngest(b *testing.B) {
	raws := makeEOSRawBlocks(b, 256, 8)
	f := &memFetcher{raws}
	ctx := context.Background()
	for _, bench := range []struct {
		name string
		dec  func(*EOSAggregator) Decoder
	}{
		{"locked", func(a *EOSAggregator) Decoder { return lockedDecoder{EOSDecoder{Agg: a}} }},
		{"sharded", func(a *EOSAggregator) Decoder { return EOSDecoder{Agg: a} }},
	} {
		for _, workers := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s-%dw", bench.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
					blocks, handle := collect.Stream(ctx, f, collect.CrawlConfig{Workers: 4, Buffer: 64})
					n, err := IngestStream(ctx, blocks, bench.dec(agg), IngestConfig{Workers: workers, Batch: 32})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := handle.Wait(); err != nil {
						b.Fatal(err)
					}
					if n != int64(len(raws)) {
						b.Fatalf("ingested %d", n)
					}
				}
			})
		}
	}
}

// BenchmarkStreamIngest tracks the decoupling win in the perf trajectory:
// the same 256-block EOS history ingested through the legacy callback Sink
// (decode + per-block lock inside the crawl callback) versus the streaming
// path (bounded stream into a decode pool with batched lock acquisitions).
func BenchmarkStreamIngest(b *testing.B) {
	raws := makeEOSRawBlocks(b, 256, 8)
	f := &memFetcher{raws}
	ctx := context.Background()

	b.Run("callback-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
			ing := NewIngestor(EOSDecoder{Agg: agg})
			res, err := collect.Crawl(ctx, f, collect.CrawlConfig{Workers: 4}, ing.IngestRaw)
			if err != nil || res.Blocks != int64(len(raws)) {
				b.Fatalf("crawl: %+v %v", res, err)
			}
		}
	})

	b.Run("stream-batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
			blocks, handle := collect.Stream(ctx, f, collect.CrawlConfig{Workers: 4, Buffer: 64})
			n, err := IngestStream(ctx, blocks, EOSDecoder{Agg: agg}, IngestConfig{Workers: 2, Batch: 32})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := handle.Wait(); err != nil {
				b.Fatal(err)
			}
			if n != int64(len(raws)) {
				b.Fatalf("ingested %d", n)
			}
		}
	})
}
