package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/rpcserve"
)

// TestChainSummaryOrderIndependent is the property the archive replay path
// rests on: however blocks arrive (live crawl worker interleavings vs.
// replay interleavings), the rendered figures are byte-identical.
func TestChainSummaryOrderIndependent(t *testing.T) {
	mkBlocks := func() []*rpcserve.EOSBlockJSON {
		ts := chain.ObservationStart
		var blocks []*rpcserve.EOSBlockJSON
		for i := 0; i < 12; i++ {
			blocks = append(blocks, eosBlock(i+1, ts.Add(time.Duration(i)*time.Hour),
				[]rpcserve.EOSActionJSON{transfer("eosio.token", "alice", "bob", "1.0000 EOS")},
				[]rpcserve.EOSActionJSON{eosAction("whaleextrust", "verifytrade2", "whaleextrust", map[string]string{
					"buyer": "trader1", "seller": "trader1", "quantity": "5.0000 EOS",
				})},
			))
		}
		return blocks
	}

	forward := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	for _, b := range mkBlocks() {
		if err := forward.IngestBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	backward := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	blocks := mkBlocks()
	for i := len(blocks) - 1; i >= 0; i-- {
		if err := backward.IngestBlock(blocks[i]); err != nil {
			t.Fatal(err)
		}
	}

	a, b := SummarizeEOS(forward).Render(), SummarizeEOS(backward).Render()
	if a != b {
		t.Fatalf("summaries differ by ingestion order:\n%s\nvs\n%s", a, b)
	}
}

func TestChainSummaryEOSContent(t *testing.T) {
	a := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	ts := chain.ObservationStart
	for i := 0; i < 4; i++ {
		if err := a.IngestBlock(eosBlock(i+1, ts.Add(time.Duration(i)*time.Second),
			[]rpcserve.EOSActionJSON{transfer("eosio.token", "alice", "bob", "1.0000 EOS")},
		)); err != nil {
			t.Fatal(err)
		}
	}
	out := SummarizeEOS(a).Render()
	for _, want := range []string{
		"--- eos figures ---",
		"blocks:          4",
		"txs/ops:         4",
		"observed tps:",
		"bucket p50/p90/p99:",
		"transfer",
		"wash trades:     0 settled",
		"boomerang txs:   0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestChainSummaryTezosAndXRP(t *testing.T) {
	tz := NewTezosAggregator(chain.ObservationStart, 6*time.Hour)
	if err := tz.IngestBlock(tezosBlock(1, chain.ObservationStart,
		rpcserve.TezosOperationJSON{Kind: "endorsement", Level: 1, SlotCount: 1},
		rpcserve.TezosOperationJSON{Kind: "transaction", Source: "tz1a", Destination: "tz1b", Amount: 5},
	)); err != nil {
		t.Fatal(err)
	}
	out := SummarizeTezos(tz).Render()
	if !strings.Contains(out, "--- tezos figures ---") || !strings.Contains(out, "endorsement") {
		t.Fatalf("tezos summary:\n%s", out)
	}
	if !strings.Contains(out, "endorsements:    50.00% of ops") {
		t.Fatalf("tezos endorsement share line wrong:\n%s", out)
	}

	x := NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	if err := x.IngestLedger(xrpLedger(1, chain.ObservationStart,
		payment("rA", "rB", xrpAmt("XRP", "", 10), "tesSUCCESS"),
		payment("rA", "rB", xrpAmt("XRP", "", 10), "tecUNFUNDED_PAYMENT"),
	)); err != nil {
		t.Fatal(err)
	}
	xout := SummarizeXRP(x).Render()
	if !strings.Contains(xout, "--- xrp figures ---") || !strings.Contains(xout, "failed txs:      1 (50.00%)") {
		t.Fatalf("xrp summary:\n%s", xout)
	}
}

func TestChainSummaryEmpty(t *testing.T) {
	out := SummarizeTezos(NewTezosAggregator(chain.ObservationStart, 6*time.Hour)).Render()
	if !strings.Contains(out, "window:          (empty)") {
		t.Fatalf("empty summary:\n%s", out)
	}
}
