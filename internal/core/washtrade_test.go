package core

import (
	"math"
	"testing"
)

// washScenario builds a WhaleEx-like trade set: a small ring of bots
// self-trading heavily plus organic trades between distinct accounts.
func washScenario() []DEXTrade {
	var trades []DEXTrade
	// Five bots, 40 self-trades each: balanced buy/sell in equal amounts,
	// so net balance change is zero despite the turnover.
	bots := []string{"bot1", "bot2", "bot3", "bot4", "bot5"}
	for _, b := range bots {
		for i := 0; i < 40; i++ {
			trades = append(trades, DEXTrade{Buyer: b, Seller: b, Currency: "EOS", Amount: 10})
		}
	}
	// Organic tail: 30 genuine trades between distinct low-volume accounts.
	for i := 0; i < 30; i++ {
		trades = append(trades, DEXTrade{
			Buyer:    "organic-buyer",
			Seller:   "organic-seller",
			Currency: "EOS",
			Amount:   1,
		})
	}
	return trades
}

func TestAnalyzeWashTradesEmpty(t *testing.T) {
	rep := AnalyzeWashTrades(nil, 5)
	if rep.TotalTrades != 0 || rep.SelfTradeShare != 0 || len(rep.TopAccounts) != 0 {
		t.Fatalf("empty input produced non-empty report: %+v", rep)
	}
}

func TestAnalyzeWashTradesSelfTradeShare(t *testing.T) {
	trades := washScenario()
	rep := AnalyzeWashTrades(trades, 5)
	if rep.TotalTrades != int64(len(trades)) {
		t.Fatalf("TotalTrades = %d, want %d", rep.TotalTrades, len(trades))
	}
	// 200 of 230 trades are self-trades.
	want := 200.0 / 230.0
	if math.Abs(rep.SelfTradeShare-want) > 1e-9 {
		t.Fatalf("SelfTradeShare = %f, want %f", rep.SelfTradeShare, want)
	}
}

func TestAnalyzeWashTradesTopAccounts(t *testing.T) {
	rep := AnalyzeWashTrades(washScenario(), 5)
	if len(rep.TopAccounts) != 5 {
		t.Fatalf("TopAccounts = %d entries, want 5", len(rep.TopAccounts))
	}
	for _, w := range rep.TopAccounts {
		// The five bots dominate by trade count and self-trade 100 %.
		if w.Account == "organic-buyer" || w.Account == "organic-seller" {
			t.Fatalf("organic account %s ranked in top 5", w.Account)
		}
		if w.SelfTradeShare != 1 {
			t.Errorf("bot %s self-trade share %f, want 1", w.Account, w.SelfTradeShare)
		}
		if w.Trades != 40 {
			t.Errorf("bot %s trades = %d, want 40", w.Account, w.Trades)
		}
	}
	// 200 of 230 trades involve a top-5 account.
	want := 200.0 / 230.0
	if math.Abs(rep.Top5Share-want) > 1e-9 {
		t.Fatalf("Top5Share = %f, want %f", rep.Top5Share, want)
	}
}

func TestAnalyzeWashTradesBalanceChanges(t *testing.T) {
	rep := AnalyzeWashTrades(washScenario(), 5)
	if len(rep.BalanceChanges) != 5 {
		t.Fatalf("BalanceChanges = %d entries, want 5", len(rep.BalanceChanges))
	}
	for _, bc := range rep.BalanceChanges {
		// Pure self-trading nets to zero in every traded currency — the
		// wash fingerprint the paper highlights.
		if bc.Currencies != 1 {
			t.Errorf("%s traded %d currencies, want 1", bc.Account, bc.Currencies)
		}
		if bc.UnchangedCurrencies != bc.Currencies {
			t.Errorf("%s: %d/%d currencies unchanged, want all", bc.Account, bc.UnchangedCurrencies, bc.Currencies)
		}
	}
}

func TestAnalyzeWashTradesDirectionalFlowsAreNotWash(t *testing.T) {
	// One account only buys: its net change equals its turnover, so it
	// must NOT count as unchanged.
	var trades []DEXTrade
	for i := 0; i < 10; i++ {
		trades = append(trades, DEXTrade{Buyer: "whale", Seller: "seller", Currency: "EOS", Amount: 5})
	}
	rep := AnalyzeWashTrades(trades, 1)
	if rep.SelfTradeShare != 0 {
		t.Fatalf("SelfTradeShare = %f, want 0", rep.SelfTradeShare)
	}
	if len(rep.BalanceChanges) != 1 {
		t.Fatalf("BalanceChanges: %+v", rep.BalanceChanges)
	}
	bc := rep.BalanceChanges[0]
	if bc.UnchangedCurrencies != 0 {
		t.Fatalf("directional flow reported as unchanged: %+v", bc)
	}
}

func TestAnalyzeWashTradesTopKClamped(t *testing.T) {
	trades := []DEXTrade{{Buyer: "a", Seller: "b", Currency: "EOS", Amount: 1}}
	rep := AnalyzeWashTrades(trades, 10)
	if len(rep.TopAccounts) != 2 {
		t.Fatalf("TopAccounts = %d, want the 2 accounts present", len(rep.TopAccounts))
	}
}

func TestConcentration(t *testing.T) {
	// Uniform activity: Gini 0; one dominant account: high top-1 share.
	uniform := []float64{1, 1, 1, 1}
	c := Concentration(uniform, 2)
	if c.Accounts != 4 || c.K != 2 {
		t.Fatalf("stats: %+v", c)
	}
	if c.Gini > 0.01 {
		t.Errorf("uniform Gini = %f, want ~0", c.Gini)
	}
	if math.Abs(c.TopKShare-0.5) > 1e-9 {
		t.Errorf("uniform top-2 share = %f, want 0.5", c.TopKShare)
	}

	skewed := []float64{97, 1, 1, 1}
	c = Concentration(skewed, 1)
	if c.TopKShare < 0.9 {
		t.Errorf("skewed top-1 share = %f, want ~0.97", c.TopKShare)
	}
	if c.Gini < 0.5 {
		t.Errorf("skewed Gini = %f, want high", c.Gini)
	}
}
