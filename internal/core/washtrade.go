package core

import (
	"sort"

	"repro/internal/stats"
)

// WashTradeReport quantifies the §4.1 WhaleEx findings from the settled
// trades the aggregator collected.
type WashTradeReport struct {
	TotalTrades int64
	// SelfTradeShare is the fraction of trades where buyer == seller.
	SelfTradeShare float64
	// Top5Share is the fraction of trades involving (as buyer or seller)
	// one of the five most active accounts — the paper reports over 70 %.
	Top5Share float64
	// TopAccounts ranks accounts by trade involvement with their
	// self-trade ratios; the paper reports >85 % for each of the top 5.
	TopAccounts []WashTrader
	// BalanceChanges reports, per top account, the fraction of traded
	// currencies whose net balance change stayed under 0.7 % of turnover —
	// near-zero movement despite enormous volume is the wash fingerprint.
	BalanceChanges []BalanceChange
}

// WashTrader is one account's wash-trading profile.
type WashTrader struct {
	Account        string
	Trades         int64
	SelfTrades     int64
	SelfTradeShare float64
}

// BalanceChange summarizes an account's per-currency net movement.
type BalanceChange struct {
	Account string
	// Currencies is the number of currencies the account traded.
	Currencies int
	// UnchangedCurrencies is how many of them ended within 0.7 % of zero
	// net change relative to turnover.
	UnchangedCurrencies int
}

// AnalyzeWashTrades computes the report over the aggregator's DEX trades.
func AnalyzeWashTrades(trades []DEXTrade, topK int) WashTradeReport {
	var rep WashTradeReport
	rep.TotalTrades = int64(len(trades))
	if len(trades) == 0 {
		return rep
	}

	involvement := make(map[string]*WashTrader)
	get := func(acct string) *WashTrader {
		w := involvement[acct]
		if w == nil {
			w = &WashTrader{Account: acct}
			involvement[acct] = w
		}
		return w
	}
	var selfTrades int64
	for _, t := range trades {
		self := t.Buyer == t.Seller
		if self {
			selfTrades++
		}
		get(t.Buyer).Trades++
		if self {
			get(t.Buyer).SelfTrades++
		} else {
			get(t.Seller).Trades++
		}
	}
	rep.SelfTradeShare = float64(selfTrades) / float64(len(trades))

	ranked := make([]*WashTrader, 0, len(involvement))
	for _, w := range involvement {
		if w.Trades > 0 {
			w.SelfTradeShare = float64(w.SelfTrades) / float64(w.Trades)
		}
		ranked = append(ranked, w)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Trades != ranked[j].Trades {
			return ranked[i].Trades > ranked[j].Trades
		}
		return ranked[i].Account < ranked[j].Account
	})
	if topK > len(ranked) {
		topK = len(ranked)
	}
	top := ranked[:topK]
	for _, w := range top {
		rep.TopAccounts = append(rep.TopAccounts, *w)
	}

	// Share of all trades involving a top account.
	topSet := make(map[string]bool, topK)
	for _, w := range top {
		topSet[w.Account] = true
	}
	var involvingTop int64
	for _, t := range trades {
		if topSet[t.Buyer] || topSet[t.Seller] {
			involvingTop++
		}
	}
	rep.Top5Share = float64(involvingTop) / float64(len(trades))

	// Net balance change per (account, currency): bought adds, sold
	// subtracts. Turnover is total traded volume.
	type flows struct{ net, turnover float64 }
	byAcctCur := make(map[string]map[string]*flows)
	track := func(acct, cur string, delta, volume float64) {
		if !topSet[acct] {
			return
		}
		m := byAcctCur[acct]
		if m == nil {
			m = make(map[string]*flows)
			byAcctCur[acct] = m
		}
		f := m[cur]
		if f == nil {
			f = &flows{}
			m[cur] = f
		}
		f.net += delta
		f.turnover += volume
	}
	for _, t := range trades {
		track(t.Buyer, t.Currency, t.Amount, t.Amount)
		track(t.Seller, t.Currency, -t.Amount, t.Amount)
	}
	for _, w := range top {
		bc := BalanceChange{Account: w.Account}
		for _, f := range byAcctCur[w.Account] {
			bc.Currencies++
			if f.turnover == 0 {
				continue
			}
			net := f.net
			if net < 0 {
				net = -net
			}
			if net/f.turnover <= 0.007 {
				bc.UnchangedCurrencies++
			}
		}
		rep.BalanceChanges = append(rep.BalanceChanges, bc)
	}
	return rep
}

// ConcentrationStats summarizes how concentrated traffic is across accounts.
type ConcentrationStats struct {
	Accounts  int
	Gini      float64
	TopKShare float64
	K         int
}

// Concentration computes Gini and top-k share over per-account activity.
// Both statistics read one shared sorted view of the input instead of each
// re-copying and re-sorting it.
func Concentration(perAccount []float64, k int) ConcentrationStats {
	sel := stats.GetSelector()
	sel.Load(perAccount)
	out := ConcentrationStats{
		Accounts:  len(perAccount),
		Gini:      sel.Gini(),
		TopKShare: sel.TopShare(k),
		K:         k,
	}
	stats.PutSelector(sel)
	return out
}
