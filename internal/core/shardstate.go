package core

import (
	"fmt"
	"io"
	"time"
)

// Window is a shard's time-series geometry: the origin its buckets anchor
// to and the bucket width. Two shards merge only when their windows are
// equal — bucket indexes are meaningless across different anchors.
type Window struct {
	Origin time.Time
	Bucket time.Duration
}

// Equal reports whether two windows describe the same bucket grid.
func (w Window) Equal(o Window) bool {
	return w.Origin.Equal(o.Origin) && w.Bucket == o.Bucket
}

func (w Window) String() string {
	return fmt.Sprintf("%s/%s", w.Origin.UTC().Format(time.RFC3339), w.Bucket)
}

// BlockRange is the contiguous block range a shard covers, inclusive on
// both ends. The zero value means "unknown" — an in-process shard that was
// never told its partition.
type BlockRange struct {
	From, To int64
}

// Known reports whether the range was set to a valid partition.
func (r BlockRange) Known() bool { return r.From > 0 && r.To >= r.From }

// Blocks returns the number of blocks in the range (0 when unknown).
func (r BlockRange) Blocks() int64 {
	if !r.Known() {
		return 0
	}
	return r.To - r.From + 1
}

// Overlaps reports whether two known ranges share any block.
func (r BlockRange) Overlaps(o BlockRange) bool {
	return r.Known() && o.Known() && r.From <= o.To && o.From <= r.To
}

// Union returns the smallest range covering both.
func (r BlockRange) Union(o BlockRange) BlockRange {
	switch {
	case !r.Known():
		return o
	case !o.Known():
		return r
	}
	if o.From < r.From {
		r.From = o.From
	}
	if o.To > r.To {
		r.To = o.To
	}
	return r
}

func (r BlockRange) String() string {
	if !r.Known() {
		return "(unknown)"
	}
	return fmt.Sprintf("[%d, %d]", r.From, r.To)
}

// ShardState is the one contract every chain's mergeable aggregate state
// implements — *EOSShard, *TezosShard and *XRPShard all satisfy it — and
// the only surface the distributed layer (shard codec, cmd/crawl
// -emit-shard, cmd/merge) and the ingest pool consume. A fourth chain
// plugs into crawling, replay, serving and distributed merge by
// implementing it once.
//
// A ShardState is single-owner: exactly one goroutine may touch it between
// creation and Merge. Every statistic it keeps is order-independent, so
// any partition of blocks across any number of shards, merged in any
// order, renders the same Summary — the invariant that makes a 3-way
// distributed crawl byte-identical to a single-process one.
type ShardState interface {
	// Chain names the chain ("eos", "tezos", "xrp") as archive manifests
	// and -chain flags spell it.
	Chain() string
	// Window returns the time-series geometry the state was built with.
	Window() Window
	// Covered returns the block range this state aggregated, when known.
	Covered() BlockRange
	// SetCovered records the block range, so an emitted shard carries its
	// partition and the merge coordinator can refuse gaps and overlaps.
	SetCovered(BlockRange)
	// IngestBatch folds a batch of decoded blocks (the Decoder.Decode
	// output type for this chain) into the state — no locking; the owner
	// is the only writer. A malformed element fails the whole batch
	// without ingesting any of it.
	IngestBatch(batch []any) error
	// Merge folds src into the receiver and resets src (so a stale alias
	// cannot double-merge). It refuses cross-chain sources, mismatched
	// windows and overlapping covered ranges.
	Merge(src ShardState) error
	// Summary captures the deterministic figures footprint. Nothing in the
	// returned summary aliases live state.
	Summary() ChainSummary
	// EncodeTo writes the state as a sealed, versioned, checksummed shard
	// blob (see internal/wire shard codec).
	EncodeTo(w io.Writer) error
	// DecodeFrom replaces the state with a blob's contents. Any structural
	// damage — truncation, bit flips, a future version, another chain's
	// blob — is an error, never a panic or a silent partial decode.
	DecodeFrom(r io.Reader) error
}

// NewShardState builds an empty standalone shard for a chain name — the
// merge coordinator's entry point, needing no aggregator. EOS states carry
// the default classification tables (the same ones NewEOSAggregator
// installs), which are configuration, not aggregate state: they are never
// serialized, so an emitted shard decodes against the coordinator's own
// tables.
func NewShardState(chainName string, origin time.Time, bucket time.Duration) (ShardState, error) {
	switch chainName {
	case "eos":
		s := &EOSShard{}
		s.applyDefaultTables()
		s.init(origin, bucket)
		return s, nil
	case "tezos":
		s := &TezosShard{}
		s.init(origin, bucket)
		return s, nil
	case "xrp":
		s := &XRPShard{}
		s.init(origin, bucket)
		return s, nil
	}
	return nil, fmt.Errorf("core: unknown chain %q", chainName)
}

// mergeAsShard is the shared front half of every chain's ShardState.Merge:
// it type-asserts src, validates window compatibility and covered-range
// disjointness, and returns the typed source plus the unioned range.
func mergeAsShard[S ShardState](dst ShardState, src ShardState) (S, BlockRange, error) {
	var zero S
	typed, ok := src.(S)
	if !ok {
		return zero, BlockRange{}, fmt.Errorf("core: merging %s shard into %s shard", src.Chain(), dst.Chain())
	}
	if !dst.Window().Equal(src.Window()) {
		return zero, BlockRange{}, fmt.Errorf("core: merging %s shards with mismatched windows (%s vs %s)",
			dst.Chain(), dst.Window(), src.Window())
	}
	if dst.Covered().Overlaps(src.Covered()) {
		return zero, BlockRange{}, fmt.Errorf("core: merging %s shards with overlapping block ranges (%s and %s): some blocks would count twice",
			dst.Chain(), dst.Covered(), src.Covered())
	}
	return typed, dst.Covered().Union(src.Covered()), nil
}
