package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/chain"
	"repro/internal/collect"
)

// writeRawArchive archives pre-marshaled blocks [1, len(raws)] in reverse
// order (arrival order of a reverse-chronological crawl).
func writeRawArchive(t testing.TB, dir string, chainName string, raws [][]byte) *archive.Reader {
	t.Helper()
	w, err := archive.NewWriter(archive.WriterConfig{Dir: dir, Chain: chainName, SegmentBlocks: 48})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(len(raws)); num >= 1; num-- {
		if err := w.Append(num, raws[num-1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// TestIngestArchiveMatchesStreamIngest: the segment-walk replay must
// produce byte-identical figures to the stream-fetch replay (and hence to
// the live crawl), at every worker count.
func TestIngestArchiveMatchesStreamIngest(t *testing.T) {
	raws := makeEOSRawBlocks(t, 96, 4)
	rd := writeRawArchive(t, t.TempDir(), "eos", raws)

	streamAgg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	res, _, err := IngestCrawl(context.Background(), rd, collect.CrawlConfig{
		From: rd.From(), To: rd.To(), Workers: 3,
	}, EOSDecoder{Agg: streamAgg}, IngestConfig{Workers: 2, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != int64(len(raws)) {
		t.Fatalf("stream replay fetched %d blocks, want %d", res.Blocks, len(raws))
	}
	want := SummarizeEOS(streamAgg).Render()

	for _, workers := range []int{1, 2, 4, 7} {
		agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
		n, err := IngestArchive(context.Background(), rd, EOSDecoder{Agg: agg}, IngestConfig{Workers: workers, Batch: 8})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != int64(len(raws)) {
			t.Fatalf("workers=%d: ingested %d blocks, want %d", workers, n, len(raws))
		}
		if got := SummarizeEOS(agg).Render(); got != want {
			t.Fatalf("workers=%d: segment-walk render diverged\n--- stream ---\n%s\n--- walk ---\n%s", workers, want, got)
		}
	}
}

// TestIngestArchiveDecodeError: a payload the decoder rejects surfaces as
// the replay error, with the blocks ingested before it still counted.
func TestIngestArchiveDecodeError(t *testing.T) {
	raws := makeEOSRawBlocks(t, 12, 1)
	raws[7] = []byte(`{broken`)
	rd := writeRawArchive(t, t.TempDir(), "eos", raws)
	agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	n, err := IngestArchive(context.Background(), rd, EOSDecoder{Agg: agg}, IngestConfig{Workers: 2})
	if err == nil {
		t.Fatal("corrupt payload replayed without error")
	}
	if n >= int64(len(raws)) {
		t.Fatalf("ingested %d blocks despite a corrupt one", n)
	}
}

// BenchmarkParallelReplay pits the two archive→aggregate paths against
// each other over the same archived EOS history: "stream-fetch" drives
// collect.Stream over Reader.FetchBlock (per-block copy + channel hop into
// the decode pool), "segment-walk" decodes records where they lie via
// IngestArchive. Sub-benchmarks vary the walk's worker count; on a
// multi-core runner the fan-out is the speedup the tentpole claims, on a
// single-CPU container the walk still wins by skipping the copies.
func BenchmarkParallelReplay(b *testing.B) {
	raws := makeEOSRawBlocks(b, 256, 8)
	var bytes int64
	for _, r := range raws {
		bytes += int64(len(r))
	}
	rd := writeRawArchive(b, b.TempDir(), "eos", raws)
	ctx := context.Background()

	b.Run("stream-fetch", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
			res, _, err := IngestCrawl(ctx, rd, collect.CrawlConfig{
				From: rd.From(), To: rd.To(), Workers: 4, MaxRetries: 1,
			}, EOSDecoder{Agg: agg}, IngestConfig{Workers: 2, Batch: 32})
			if err != nil || res.Blocks != int64(len(raws)) {
				b.Fatalf("stream replay: %+v %v", res, err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("segment-walk-%dw", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				agg := NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
				n, err := IngestArchive(ctx, rd, EOSDecoder{Agg: agg}, IngestConfig{Workers: workers, Batch: 32})
				if err != nil || n != int64(len(raws)) {
					b.Fatalf("segment walk: %d %v", n, err)
				}
			}
		})
	}
}
