// Package cli holds the flag surface the crawl/report/serve/merge
// commands share: the archive/replay/range plumbing that used to be
// copy-pasted per command, validated once here, and the -shard i/n
// partition spec a distributed crawl is launched with.
package cli

import (
	"flag"
	"fmt"

	"repro/internal/blobstore"
)

// Mode selects which of the shared flags a command registers and how the
// block range is validated — a crawl's -from/-to bound a live fetch, a
// report's slice an archived one.
type Mode int

const (
	// ModeCrawl registers -archive and a live crawl range (-from defaults
	// to block 1, -to 0 meaning head).
	ModeCrawl Mode = iota
	// ModeReport registers -archive, -replay and a replay slice (-from/-to
	// default 0: whole archive, and either both or neither must be set).
	ModeReport
	// ModeServe registers -archive, -replay and the live-feed range.
	ModeServe
)

// ArchiveFlags is the validated archive/replay/range flag set. Register it
// on a FlagSet with the command's Mode, then call Validate after parsing —
// every store location is scheme-checked through blobstore.Resolve before
// any crawl or replay starts, so a typoed URL fails in microseconds
// instead of after a network crawl.
type ArchiveFlags struct {
	// Archive is the blob-store location raw blocks are teed into
	// (path, file://, mem://, s3://, null://).
	Archive string
	// Replay is the blob-store location to replay archives from
	// (ModeReport and ModeServe only).
	Replay string
	// From and To bound the crawl or replay. Semantics are per Mode: for
	// crawl/serve they bound the live fetch (To 0 = head); for report they
	// slice an archived crawl and must be passed together.
	From, To int64

	mode Mode
}

// Register installs the mode's flags on fs. Help text stays per-command
// because the same flag means a different thing to a crawl and a replay.
func (a *ArchiveFlags) Register(fs *flag.FlagSet, mode Mode) {
	a.mode = mode
	switch mode {
	case ModeCrawl:
		fs.StringVar(&a.Archive, "archive", "", "archive location (path or blob-store URL: file://, mem://, s3://, null://): tee every raw block into it for offline replay (cmd/report -replay)")
		fs.Int64Var(&a.From, "from", 1, "first block")
		fs.Int64Var(&a.To, "to", 0, "last block (0 = head)")
	case ModeReport:
		fs.StringVar(&a.Archive, "archive", "", "archive location (path or blob-store URL: file://, mem://, s3://, null://): stages tee raw blocks into it, and replay from it when it already covers their ranges")
		fs.StringVar(&a.Replay, "replay", "", "replay archives at this location (path or blob-store URL) offline (no pipeline, no network) and print their figures")
		fs.Int64Var(&a.From, "from", 0, "with -replay: lowest block to replay; with -to, only segments covering [from, to] are fetched")
		fs.Int64Var(&a.To, "to", 0, "with -replay: highest block to replay")
	case ModeServe:
		fs.StringVar(&a.Archive, "archive", "", "with live endpoints: tee every raw block into per-chain archives at this location (path or blob-store URL)")
		fs.StringVar(&a.Replay, "replay", "", "serve from archives at this location (path or blob-store URL: file://, mem://, s3://) offline, no network")
		fs.Int64Var(&a.From, "from", 1, "first block (live feeds)")
		fs.Int64Var(&a.To, "to", 0, "last block (live feeds; 0 = head)")
	}
}

// ValidateStore scheme-checks one blob-store location outside the shared
// flag set (e.g. -emit-shard), so a typoed URL fails before any crawl.
func ValidateStore(location string) error {
	if location == "" {
		return nil
	}
	_, err := blobstore.Resolve(location)
	return err
}

// Replaying reports whether a replay location was passed.
func (a *ArchiveFlags) Replaying() bool { return a.Replay != "" }

// Validate checks store locations and the block range against the mode's
// semantics. Error text is part of the commands' tested CLI contract.
func (a *ArchiveFlags) Validate() error {
	for _, loc := range []string{a.Archive, a.Replay} {
		if loc == "" {
			continue
		}
		if _, err := blobstore.Resolve(loc); err != nil {
			return err
		}
	}
	switch a.mode {
	case ModeReport:
		if a.From == 0 && a.To == 0 {
			return nil
		}
		if !a.Replaying() {
			return fmt.Errorf("-from/-to need -replay: they slice an archived crawl, not a live one")
		}
		if a.From <= 0 || a.To < a.From {
			return fmt.Errorf("-from %d -to %d is not a block range: pass 1 <= from <= to (both flags together)", a.From, a.To)
		}
	default:
		if a.From < 1 {
			return fmt.Errorf("-from %d is not a block: pass from >= 1", a.From)
		}
		if a.To != 0 && a.To < a.From {
			return fmt.Errorf("-from %d -to %d is not a block range: pass to >= from (or 0 for head)", a.From, a.To)
		}
	}
	return nil
}
