package cli

import (
	"flag"
	"strings"
	"testing"
)

func parse(t *testing.T, mode Mode, args ...string) (*ArchiveFlags, error) {
	t.Helper()
	var a ArchiveFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	a.Register(fs, mode)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &a, a.Validate()
}

func TestArchiveFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mode    Mode
		args    []string
		wantErr string
	}{
		{"crawl defaults", ModeCrawl, nil, ""},
		{"crawl archive url", ModeCrawl, []string{"-archive", "mem://x"}, ""},
		{"crawl bad scheme", ModeCrawl, []string{"-archive", "ftp://x"}, "unsupported scheme"},
		{"crawl from zero", ModeCrawl, []string{"-from", "0"}, "pass from >= 1"},
		{"crawl inverted", ModeCrawl, []string{"-from", "10", "-to", "5"}, "not a block range"},
		{"crawl to head", ModeCrawl, []string{"-from", "10"}, ""},
		{"report defaults", ModeReport, nil, ""},
		{"report range needs replay", ModeReport, []string{"-from", "1", "-to", "5"}, "need -replay"},
		{"report half range", ModeReport, []string{"-replay", "mem://x", "-from", "3"}, "not a block range"},
		{"report inverted", ModeReport, []string{"-replay", "mem://x", "-from", "9", "-to", "2"}, "not a block range"},
		{"report full range", ModeReport, []string{"-replay", "mem://x", "-from", "2", "-to", "9"}, ""},
		{"report bad replay url", ModeReport, []string{"-replay", "gopher://x"}, "unsupported scheme"},
		{"serve defaults", ModeServe, nil, ""},
		{"serve inverted", ModeServe, []string{"-from", "7", "-to", "3"}, "not a block range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse(t, tc.mode, tc.args...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestShardSpecSet(t *testing.T) {
	bad := []string{"", "3", "0/3", "4/3", "-1/2", "a/b", "1/0", "2/"}
	for _, v := range bad {
		var s ShardSpec
		if err := s.Set(v); err == nil {
			t.Errorf("Set(%q) accepted", v)
		}
	}
	var s ShardSpec
	if err := s.Set("2/3"); err != nil {
		t.Fatal(err)
	}
	if !s.Enabled() || s.I != 2 || s.N != 3 || s.String() != "2/3" {
		t.Fatalf("parsed %+v, String %q", s, s.String())
	}
	if (&ShardSpec{}).Enabled() {
		t.Fatal("zero spec reports enabled")
	}
}

// TestShardSpecCutTiles is the property cmd/merge's gap/overlap validation
// leans on: for any range and shard count, the N cuts tile [from, to]
// exactly — contiguous, disjoint, and complete.
func TestShardSpecCutTiles(t *testing.T) {
	ranges := []struct{ from, to int64 }{
		{1, 1}, {1, 2}, {1, 100}, {5, 17}, {1000, 1006}, {42, 42 + 999},
	}
	for _, r := range ranges {
		span := r.to - r.from + 1
		for n := 1; int64(n) <= span && n <= 8; n++ {
			next := r.from
			for i := 1; i <= n; i++ {
				s := ShardSpec{I: i, N: n}
				lo, hi, err := s.Cut(r.from, r.to)
				if err != nil {
					t.Fatalf("Cut(%d/%d, [%d,%d]): %v", i, n, r.from, r.to, err)
				}
				if lo != next {
					t.Fatalf("Cut(%d/%d, [%d,%d]) starts at %d, want %d (gap or overlap)", i, n, r.from, r.to, lo, next)
				}
				if hi < lo {
					t.Fatalf("Cut(%d/%d, [%d,%d]) is empty: [%d,%d]", i, n, r.from, r.to, lo, hi)
				}
				next = hi + 1
			}
			if next != r.to+1 {
				t.Fatalf("%d-way cut of [%d,%d] ends at %d, want %d", n, r.from, r.to, next-1, r.to)
			}
		}
	}
}

func TestShardSpecCutErrors(t *testing.T) {
	s := ShardSpec{I: 1, N: 4}
	if _, _, err := s.Cut(1, 3); err == nil {
		t.Fatal("cutting 3 blocks into 4 shards succeeded")
	}
	if _, _, err := s.Cut(10, 5); err == nil {
		t.Fatal("cutting an inverted range succeeded")
	}
	if _, _, err := s.Cut(0, 5); err == nil {
		t.Fatal("cutting from block 0 succeeded")
	}
}
