package cli

import (
	"fmt"
	"strconv"
	"strings"
)

// ShardSpec is the -shard i/n flag of a distributed crawl: this process is
// shard i of n and crawls the i-th contiguous slice of the block range.
// The zero value means "not sharded". It implements flag.Value.
type ShardSpec struct {
	I, N int
}

// String renders "i/n", or "" when unset (the flag package prints this as
// the default).
func (s *ShardSpec) String() string {
	if s == nil || s.N == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.I, s.N)
}

// Set parses "i/n" with 1 <= i <= n.
func (s *ShardSpec) Set(v string) error {
	is, ns, ok := strings.Cut(v, "/")
	if !ok {
		return fmt.Errorf("shard spec %q is not i/n (e.g. -shard 2/3)", v)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return fmt.Errorf("shard index %q: %v", is, err)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return fmt.Errorf("shard count %q: %v", ns, err)
	}
	if n < 1 || i < 1 || i > n {
		return fmt.Errorf("shard spec %d/%d out of range: need 1 <= i <= n", i, n)
	}
	s.I, s.N = i, n
	return nil
}

// Enabled reports whether a shard spec was passed.
func (s *ShardSpec) Enabled() bool { return s.N > 0 }

// Cut returns this shard's contiguous slice of [from, to]. The N slices
// tile the range exactly — no overlap, no gap — so cmd/merge's range
// validation accepts any complete set of them. The first span%N shards
// take one extra block. A range with fewer blocks than shards is an
// error: the empty shards would emit nothing and the merge would read as
// a gap.
func (s *ShardSpec) Cut(from, to int64) (int64, int64, error) {
	if from < 1 || to < from {
		return 0, 0, fmt.Errorf("cannot shard [%d, %d]: not a block range", from, to)
	}
	span := to - from + 1
	if span < int64(s.N) {
		return 0, 0, fmt.Errorf("cannot split %d blocks across %d shards: fewer blocks than shards", span, s.N)
	}
	base, rem := span/int64(s.N), span%int64(s.N)
	i := int64(s.I - 1)
	lo := from + i*base + min64(i, rem)
	hi := lo + base - 1
	if i < rem {
		hi++
	}
	return lo, hi, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
