// Package repro reproduces "Revisiting Transactional Statistics of
// High-scalability Blockchains" (Perez, Xu, Livshits — IMC 2020): chain
// simulators for EOS, Tezos and the XRP Ledger, the network APIs the paper
// crawled, a reverse-chronological collector, and the measurement pipeline
// that regenerates every table and figure of the evaluation.
//
// See DESIGN.md for the system inventory, the stage-graph orchestrator and
// the per-figure index, and bench_test.go for the per-figure regeneration
// harness (each table embeds the paper's reference values for comparison).
package repro
