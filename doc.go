// Package repro reproduces "Revisiting Transactional Statistics of
// High-scalability Blockchains" (Perez, Xu, Livshits — IMC 2020): chain
// simulators for EOS, Tezos and the XRP Ledger, the network APIs the paper
// crawled, a reverse-chronological collector, and the measurement pipeline
// that regenerates every table and figure of the evaluation.
//
// See DESIGN.md for the system inventory and the per-experiment index,
// EXPERIMENTS.md for paper-versus-measured results, and bench_test.go for
// the per-figure regeneration harness.
package repro
