package repro

// The benchmark harness regenerates every table and figure from the paper's
// evaluation. Each benchmark prints its table once (so `go test -bench=.`
// doubles as the reproduction report) and then measures the cost of the
// analysis that produces it. BenchmarkPipelineEndToEnd measures the whole
// reproduction — workload, simulation, crawl, measurement.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The scales used here are bench-friendly; cmd/report -eos-scale/-xrp-scale
// flags rerun the pipeline at finer scales for tighter convergence.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/wire"
	"repro/internal/xrp"
)

var (
	benchOnce sync.Once
	benchRes  *pipeline.Result
	benchErr  error

	printOnce sync.Map
)

// benchResult runs the pipeline once per test binary at bench scales.
func benchResult(b *testing.B) *pipeline.Result {
	b.Helper()
	benchOnce.Do(func() {
		opts := pipeline.DefaultOptions()
		benchRes, benchErr = pipeline.Run(context.Background(), opts)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRes
}

// printTable emits a figure's rows exactly once across the bench run.
func printTable(name, content string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", content)
	}
}

// BenchmarkFigure1TxTypeDistribution regenerates the per-chain transaction
// type distribution (paper Figure 1).
func BenchmarkFigure1TxTypeDistribution(b *testing.B) {
	r := benchResult(b)
	printTable("fig1", pipeline.Figure1(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pipeline.Figure1(r)
	}
}

// BenchmarkFigure2DatasetCharacterization regenerates the dataset table
// (paper Figure 2): blocks, transactions and gzip footprint per chain.
func BenchmarkFigure2DatasetCharacterization(b *testing.B) {
	r := benchResult(b)
	printTable("fig2", pipeline.Figure2(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pipeline.Figure2(r)
	}
}

// BenchmarkFigure3ThroughputOverTime regenerates the three throughput
// series (paper Figure 3), including the November 1 EIDOS regime change and
// the XRP payment-spam waves.
func BenchmarkFigure3ThroughputOverTime(b *testing.B) {
	r := benchResult(b)
	printTable("fig3", pipeline.Figure3(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pipeline.Figure3(r)
	}
}

// BenchmarkFigure4EOSTopApps regenerates the EOS top-application table
// (paper Figure 4).
func BenchmarkFigure4EOSTopApps(b *testing.B) {
	r := benchResult(b)
	printTable("fig4", pipeline.Figure4(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.EOS.TopReceivers(8)
	}
}

// BenchmarkFigure5EOSTopSenderPairs regenerates the EOS sender→receiver
// pair table (paper Figure 5).
func BenchmarkFigure5EOSTopSenderPairs(b *testing.B) {
	r := benchResult(b)
	printTable("fig5", pipeline.Figure5(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.EOS.TopSenderPairs(6, 3)
	}
}

// BenchmarkFigure6TezosTopSenders regenerates the Tezos top-sender fan-out
// table (paper Figure 6).
func BenchmarkFigure6TezosTopSenders(b *testing.B) {
	r := benchResult(b)
	printTable("fig6", pipeline.Figure6(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Tezos.TopSenders(6)
	}
}

// BenchmarkFigure7XRPValueDecomposition regenerates the XRP value Sankey
// (paper Figure 7): failed share, zero-value payments, unfulfilled offers,
// and the ~2.3 % economic share headline.
func BenchmarkFigure7XRPValueDecomposition(b *testing.B) {
	r := benchResult(b)
	printTable("fig7", pipeline.Figure7(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.XRP.Decompose()
	}
}

// BenchmarkFigure8XRPTopAccounts regenerates the most-active-accounts table
// (paper Figure 8) with Huobi-descendant clustering.
func BenchmarkFigure8XRPTopAccounts(b *testing.B) {
	r := benchResult(b)
	printTable("fig8", pipeline.Figure8(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.XRP.TopAccounts(10)
	}
}

// BenchmarkFigure9TezosGovernance regenerates the Babylon vote series
// (paper Figure 9).
func BenchmarkFigure9TezosGovernance(b *testing.B) {
	r := benchResult(b)
	printTable("fig9", pipeline.Figure9(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Gov.VoteSeries("ballot", 24*time.Hour)
	}
}

// BenchmarkFigure11IOURates regenerates the per-issuer BTC IOU rate table
// and the Myrone rate collapse (paper Figures 11a/11b).
func BenchmarkFigure11IOURates(b *testing.B) {
	r := benchResult(b)
	printTable("fig11", pipeline.Figure11(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.XRP.IssuerRates("BTC")
	}
}

// BenchmarkFigure12XRPValueFlow regenerates the XRP value-flow aggregation
// (paper Figure 12) with explorer-based clustering.
func BenchmarkFigure12XRPValueFlow(b *testing.B) {
	r := benchResult(b)
	printTable("fig12", pipeline.Figure12(r))
	cluster := r.ClusterFunc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.XRP.ValueFlow(cluster, 8)
	}
}

// BenchmarkHeadlineTPS regenerates the §3 throughput summary.
func BenchmarkHeadlineTPS(b *testing.B) {
	r := benchResult(b)
	printTable("tps", pipeline.HeadlineTPS(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EstimatedFullScaleTPS(r.XRP.Transactions, r.XRP.FirstLedgerTime, r.XRP.LastLedgerTime, r.Opts.XRP.Scale)
	}
}

// BenchmarkCaseWhaleExWashTrading regenerates the §4.1 wash-trading
// analysis: self-trade shares, top-5 concentration, balance changes.
func BenchmarkCaseWhaleExWashTrading(b *testing.B) {
	r := benchResult(b)
	printTable("cases", pipeline.CaseStudies(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.AnalyzeWashTrades(r.EOS.Trades, 5)
	}
}

// BenchmarkCaseEIDOSBoomerang measures boomerang detection over the crawled
// EOS corpus (§4.1).
func BenchmarkCaseEIDOSBoomerang(b *testing.B) {
	r := benchResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.EOS.BoomerangTransactions()
		_ = r.EOS.EIDOSShare()
	}
}

// BenchmarkConcentration measures the Gini/top-k concentration statistics
// used for the "18 accounts carry half the traffic" observation.
func BenchmarkConcentration(b *testing.B) {
	r := benchResult(b)
	shares := r.XRP.TrafficShares()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Concentration(shares, 18)
	}
}

// BenchmarkRateOracle measures IOU valuation lookups against the exchange
// record set.
func BenchmarkRateOracle(b *testing.B) {
	r := benchResult(b)
	key := xrp.AssetKey{Currency: "BTC", Issuer: r.XRPScenario.MyroneIssuer}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.XRP.RateToXRP(key)
	}
}

// benchPipelineOpts returns the coarse scales shared by the end-to-end
// benchmarks so a single iteration stays around a second.
func benchPipelineOpts(stageWorkers int) pipeline.Options {
	opts := pipeline.DefaultOptions()
	opts.EOS.Scale = 200_000
	opts.Tezos.Scale = 3_200
	opts.XRP.Scale = 80_000
	opts.Gov.Scale = 1_600
	opts.StageWorkers = stageWorkers
	return opts
}

// BenchmarkPipelineEndToEnd measures the entire reproduction — build the
// three calibrated workloads, simulate the 92-day window, serve the chain
// APIs, probe and shortlist endpoints, crawl everything and aggregate —
// with the stages forced sequential (StageWorkers=1), i.e. the pre-
// orchestrator baseline.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	opts := benchPipelineOpts(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineParallel runs the same reproduction with the stage
// graph unbounded, quantifying the orchestrator's speedup over
// BenchmarkPipelineEndToEnd.
func BenchmarkPipelineParallel(b *testing.B) {
	opts := benchPipelineOpts(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- wire codec micro-benchmarks -----------------------------------------
//
// The hot-path benchmarks behind the PR 4 allocation work: each chain's
// block decode and encode measured through the pooled internal/wire codec
// and through encoding/json side by side, plus the raw→aggregate ingest
// step. The wire/json ratios are the before/after evidence the bench gate
// (cmd/benchgate vs BENCH_baseline.json) defends.

func benchEOSRaw() []byte {
	b := wire.EOSBlockJSON{
		BlockNum: 12345, ID: "00003039abcdef", Previous: "00003038abcdef",
		Timestamp: "2019-10-01T00:00:00.500", Producer: "eosproducer1",
	}
	for i := 0; i < 8; i++ {
		var tx wire.EOSTrxJSON
		tx.Status = "executed"
		tx.Trx.ID = fmt.Sprintf("trx%08d", i)
		tx.Trx.Transaction.Actions = []wire.EOSActionJSON{{
			Account: "eosio.token", Name: "transfer",
			Authorization: []map[string]string{{"actor": "alicealice12", "permission": "active"}},
			Data: map[string]string{
				"from": "alicealice12", "to": "bobbobbob123",
				"quantity": "1.0000 EOS", "memo": "bench",
			},
		}}
		b.Transactions = append(b.Transactions, tx)
	}
	raw, err := json.Marshal(&b)
	if err != nil {
		panic(err)
	}
	return raw
}

func benchTezosRaw() []byte {
	b := wire.TezosBlockJSON{
		Level: 654321, Hash: "BLockHash11", Predecessor: "BLockHash10",
		Timestamp: "2019-10-01T00:00:00Z", Baker: "tz1baker",
	}
	for i := 0; i < 16; i++ {
		b.Operations = append(b.Operations,
			wire.TezosOperationJSON{Kind: "endorsement", Source: "tz1endorser", Level: 654320, SlotCount: 2},
			wire.TezosOperationJSON{Kind: "transaction", Source: "tz1alice", Destination: "tz1bob", Amount: 100000, Fee: 1420})
	}
	raw, err := json.Marshal(&b)
	if err != nil {
		panic(err)
	}
	return raw
}

func benchXRPRaw() []byte {
	l := wire.XRPLedgerJSON{
		LedgerIndex: 50000000, LedgerHash: "LEDGERHASH1", ParentHash: "LEDGERHASH0",
		CloseTime: "2019-10-01T00:00:00Z", TxCount: 8,
	}
	for i := 0; i < 8; i++ {
		l.Transactions = append(l.Transactions, wire.XRPTxJSON{
			Hash: "TXHASH", TransactionType: "Payment", Account: "rAlice",
			Destination: "rBob", DestinationTag: 7, Fee: 10, Sequence: uint32(42),
			Amount: &wire.XRPAmountJSON{Currency: "XRP", Value: 1000000},
			Result: "tesSUCCESS",
		})
	}
	env := struct {
		Ledger wire.XRPLedgerJSON `json:"ledger"`
	}{l}
	raw, err := json.Marshal(env)
	if err != nil {
		panic(err)
	}
	return raw
}

// BenchmarkDecodeEOS measures one EOS block decode: pooled wire codec vs
// encoding/json reflection.
func BenchmarkDecodeEOS(b *testing.B) {
	raw := benchEOSRaw()
	b.Run("wire", func(b *testing.B) {
		c := wire.NewCodec()
		blk := wire.GetEOSBlock()
		defer wire.PutEOSBlock(blk)
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if err := c.DecodeEOSBlock(raw, blk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			var blk wire.EOSBlockJSON
			if err := json.Unmarshal(raw, &blk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDecodeTezos measures one Tezos block decode, both paths.
func BenchmarkDecodeTezos(b *testing.B) {
	raw := benchTezosRaw()
	b.Run("wire", func(b *testing.B) {
		c := wire.NewCodec()
		blk := wire.GetTezosBlock()
		defer wire.PutTezosBlock(blk)
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if err := c.DecodeTezosBlock(raw, blk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			var blk wire.TezosBlockJSON
			if err := json.Unmarshal(raw, &blk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDecodeXRP measures one XRP ledger envelope decode, both paths.
func BenchmarkDecodeXRP(b *testing.B) {
	raw := benchXRPRaw()
	b.Run("wire", func(b *testing.B) {
		c := wire.NewCodec()
		led := wire.GetXRPLedger()
		defer wire.PutXRPLedger(led)
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if err := c.DecodeXRPLedgerResult(raw, led); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			var res struct {
				Ledger wire.XRPLedgerJSON `json:"ledger"`
			}
			if err := json.Unmarshal(raw, &res); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncodeEOS measures one EOS block encode: pooled wire codec vs
// encoding/json reflection (the rpcserve get_block hot path).
func BenchmarkEncodeEOS(b *testing.B) {
	var blk wire.EOSBlockJSON
	if err := json.Unmarshal(benchEOSRaw(), &blk); err != nil {
		b.Fatal(err)
	}
	b.Run("wire", func(b *testing.B) {
		c := wire.NewCodec()
		buf := wire.GetBuffer()
		defer wire.PutBuffer(buf)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.B = c.AppendEOSBlock(buf.B[:0], &blk)
		}
		b.SetBytes(int64(len(buf.B)))
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(&blk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncodeXRP measures one expanded XRP ledger encode, both paths.
func BenchmarkEncodeXRP(b *testing.B) {
	var res struct {
		Ledger wire.XRPLedgerJSON `json:"ledger"`
	}
	if err := json.Unmarshal(benchXRPRaw(), &res); err != nil {
		b.Fatal(err)
	}
	b.Run("wire", func(b *testing.B) {
		c := wire.NewCodec()
		buf := wire.GetBuffer()
		defer wire.PutBuffer(buf)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.B = c.AppendXRPLedger(buf.B[:0], &res.Ledger)
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(&res.Ledger); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngestEOSRaw measures the full raw→aggregate step for one EOS
// block — decode through the pooled codec, fold into the aggregator,
// release the arena struct — i.e. one unit of the ingest pool's work.
func BenchmarkIngestEOSRaw(b *testing.B) {
	raw := benchEOSRaw()
	agg := core.NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	ing := core.NewIngestor(core.EOSDecoder{Agg: agg})
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ing.IngestRaw(int64(i)+1, raw); err != nil {
			b.Fatal(err)
		}
	}
}
