// The EIDOS case study (§4.1): run the calibrated EOS workload across the
// observation window and watch the airdrop launch on November 1 multiply
// throughput, flip the network into congestion mode, spike the CPU rental
// price and lock unstaked users out.
package main

import (
	"fmt"
	"strings"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/workload"
)

func main() {
	scenario, err := workload.BuildEOS(workload.EOSOptions{Scale: 50_000})
	if err != nil {
		panic(err)
	}
	c := scenario.Chain

	fmt.Println("simulating Oct 1 – Dec 31, 2019 on EOS…")
	blocks := scenario.Run()
	fmt.Printf("produced %d blocks; EIDOS mining events: %d\n\n", blocks, scenario.EIDOS.Mines)

	// Weekly throughput and the regime change.
	fmt.Println("week       actions  boomerangs  utilization")
	var weekActions, weekBoomerangs int64
	weekStart := chain.ObservationStart
	flush := func(end string) {
		bar := strings.Repeat("#", int(weekActions/400))
		fmt.Printf("%s  %7d  %10d  %s\n", weekStart.Format("2006-01-02"), weekActions, weekBoomerangs, bar)
		weekActions, weekBoomerangs = 0, 0
	}
	for num := uint32(1); num <= c.HeadNum(); num++ {
		blk := c.GetBlock(num)
		for blk.Timestamp.Sub(weekStart) >= 7*24*3600*1e9 {
			flush(blk.Timestamp.Format("2006-01-02"))
			weekStart = weekStart.AddDate(0, 0, 7)
		}
		weekActions += int64(blk.ActionCount())
		for _, tx := range blk.Transactions {
			for _, act := range tx.Actions {
				if act.Inline && act.Account == eos.TokenAccount && act.Data["from"] == eos.EIDOSContract.String() {
					weekBoomerangs++
					break
				}
			}
		}
	}
	flush("end")

	fmt.Printf("\nnetwork congested:      %v (utilization %.2f)\n", c.Resources().Congested(), c.Resources().Utilization())
	fmt.Printf("CPU rent price index:   %.0f× baseline (paper: 10,000%% spike)\n", c.Resources().RentPriceIndex())
	fmt.Printf("CPU-rejected txs:       %d (unstaked casual users locked out)\n", c.RejectedCPU)
	fmt.Printf("EIDOS left in reserve:  %s\n", c.Tokens().Balance(eos.EIDOSContract, eos.EIDOSContract, eos.EIDOSToken))
}
