// The Tezos governance case study (§4.2, Figure 9): replay the Babylon 2.0
// amendment from the July 2019 proposal period through its promotion to
// main net in October, and print the vote evolution per period.
package main

import (
	"fmt"
	"strings"

	"repro/internal/tezos"
	"repro/internal/workload"
)

func main() {
	scenario, err := workload.BuildTezosGovernance(workload.GovernanceOptions{Scale: 200})
	if err != nil {
		panic(err)
	}
	fmt.Println("replaying the Babylon amendment (July 17 – October 18, 2019)…")
	blocks, err := scenario.Run()
	if err != nil {
		panic(err)
	}
	gov := scenario.Chain.Governance()
	fmt.Printf("produced %d blocks; promoted: %v\n\n", blocks, gov.Promoted())

	fmt.Println("periods:")
	for _, rec := range gov.Periods() {
		switch rec.Kind {
		case tezos.PeriodProposal:
			fmt.Printf("  %-12s levels %5d-%5d  winner=%s participation=%.0f%%  -> %s\n",
				rec.Kind, rec.StartLevel, rec.EndLevel, rec.Proposal, 100*rec.Participation, rec.Outcome)
		case tezos.PeriodTesting:
			fmt.Printf("  %-12s levels %5d-%5d  %s deployed on the test network\n",
				rec.Kind, rec.StartLevel, rec.EndLevel, rec.Proposal)
		default:
			fmt.Printf("  %-12s levels %5d-%5d  yay=%d nay=%d pass=%d rolls, participation=%.0f%% -> %s\n",
				rec.Kind, rec.StartLevel, rec.EndLevel, rec.Yay, rec.Nay, rec.Pass, 100*rec.Participation, rec.Outcome)
		}
	}

	// Cumulative vote curves, Figure 9 style.
	fmt.Println("\nvote accumulation (each column ≈ one slice of the period):")
	for _, kind := range []tezos.PeriodKind{tezos.PeriodProposal, tezos.PeriodExploration, tezos.PeriodPromotion} {
		series := map[string][]int64{}
		for _, ev := range gov.History() {
			if ev.Period != kind {
				continue
			}
			label := ev.Proposal
			if ev.Ballot != "" {
				label = string(ev.Ballot)
			}
			series[label] = append(series[label], ev.Rolls)
		}
		fmt.Printf("  %s:\n", kind)
		for label, rolls := range series {
			var cum int64
			var curve strings.Builder
			for _, r := range rolls {
				cum += r
				curve.WriteString(fmt.Sprintf("%d ", cum))
			}
			fmt.Printf("    %-10s %s\n", label, truncate(curve.String(), 90))
		}
	}

	fmt.Println("\npaper's observations reproduced:")
	fmt.Println("  - two proposals gathered votes, the updated one (Babylon 2.0) won")
	fmt.Println("  - zero nay votes during exploration; the foundation abstained explicitly")
	fmt.Println("  - ~15% nay during promotion after the Ledger wallet breakage")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
