// The zero-value XRP analysis (§4.3): run the calibrated ledger workload,
// value every payment through observed DEX rates, and decompose throughput
// into the paper's Figure 7 categories — including the Myrone Bagalay IOU
// manipulation and the per-issuer BTC rate table of Figure 11.
package main

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/explorer"
	"repro/internal/rpcserve"
	"repro/internal/workload"
	"repro/internal/xrp"
)

func main() {
	scenario, err := workload.BuildXRP(workload.XRPOptions{Scale: 10_000})
	if err != nil {
		panic(err)
	}
	fmt.Println("simulating Oct 1 – Dec 31, 2019 on the XRP ledger…")
	ledgers := scenario.Run()
	fmt.Printf("closed %d ledgers\n\n", ledgers)

	// Feed the aggregator straight from the ledger store (the pipeline
	// package does the same through WebSocket + the Data API).
	agg := core.NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
	for i := scenario.SetupLedgers + 1; i <= scenario.State.HeadIndex(); i++ {
		led := rpcserve.XRPLedgerToJSON(scenario.State.GetLedger(i), true)
		if err := agg.IngestLedger(&led); err != nil {
			panic(err)
		}
	}
	agg.AddExchanges(scenario.State.Exchanges())

	d := agg.Decompose()
	fmt.Println("Figure 7 decomposition:")
	fmt.Printf("  failed               %6.2f%%  (paper 10.7%%)\n", 100*d.FailedShare)
	fmt.Printf("  payments with value  %6.2f%%  (paper  2.1%%)\n", 100*d.PaymentsWithValue)
	fmt.Printf("  payments no value    %6.2f%%  (paper 36.0%%)\n", 100*d.PaymentsNoValue)
	fmt.Printf("  offers exchanged     %6.2f%%  (paper  0.1%%)\n", 100*d.OffersExchanged)
	fmt.Printf("  offers no exchange   %6.2f%%  (paper 49.4%%)\n", 100*d.OffersNoExchange)
	fmt.Printf("  => economic value    %6.2f%%  (paper ~2.3%%)\n\n", 100*d.EconomicShare)

	dir := explorer.NewDirectory(scenario.State)
	for addr, username := range scenario.Usernames {
		dir.Register(addr, username)
	}
	fmt.Println("Figure 11a — BTC IOU rates by issuer:")
	for _, ir := range agg.IssuerRates("BTC") {
		fmt.Printf("  %-28s %12.1f XRP\n", dir.ClusterName(xrp.Address(ir.Issuer)), ir.Rate)
	}

	fmt.Println("\nFigure 11b — the Myrone BTC IOU over time:")
	for _, row := range agg.RateSeries(xrp.AssetKey{Currency: "BTC", Issuer: scenario.MyroneIssuer}) {
		fmt.Printf("  %s  %10.1f XRP per BTC\n", row.Start.Format("2006-01-02"), float64(row.Counts["rate_millis"])/1000)
	}

	flow := agg.ValueFlow(func(a string) string { return dir.ClusterName(xrp.Address(a)) }, 5)
	fmt.Println("\nFigure 12 — top value senders (XRP-denominated):")
	for _, e := range flow.Senders {
		fmt.Printf("  %-28s %14.0f XRP (%.1f%%)\n", e.Name, e.XRPVolume, 100*e.XRPVolume/flow.TotalXRPVolume)
	}
}
