// Quickstart: build a small simulated XRP ledger, submit a few transactions
// by hand, close a ledger, and read back the same statistics the paper
// computes — all in-process, no network needed.
package main

import (
	"fmt"

	"repro/internal/xrp"
)

func main() {
	// A fresh ledger with main-net-shaped parameters, time-dilated 1000×.
	state := xrp.New(xrp.DefaultConfig(1000))

	// Two funded accounts and a gateway.
	alice := xrp.NewAddress("alice")
	bob := xrp.NewAddress("bob")
	gateway := xrp.NewAddress("gateway")
	for _, a := range []xrp.Address{alice, bob, gateway} {
		state.Fund(a, 10_000*xrp.DropsPerXRP)
	}

	// Alice trusts the gateway's USD, the gateway issues 100 USD to her,
	// and she pays Bob 25 — which fails with PATH_DRY because Bob never
	// opened a trust line (the most common failure in the paper's dataset).
	state.Submit(xrp.Transaction{
		Type: xrp.TxTrustSet, Account: alice,
		LimitAmount: xrp.IOU("USD", gateway, 1000),
	})
	state.CloseLedger()
	state.Submit(xrp.Transaction{
		Type: xrp.TxPayment, Account: gateway, Destination: alice,
		Amount: xrp.IOU("USD", gateway, 100),
	})
	state.Submit(xrp.Transaction{
		Type: xrp.TxPayment, Account: alice, Destination: bob,
		Amount: xrp.IOU("USD", gateway, 25),
	})
	// A plain XRP payment, which succeeds.
	state.Submit(xrp.Transaction{
		Type: xrp.TxPayment, Account: alice, Destination: bob,
		Amount: xrp.XRP(50),
	})
	ledger := state.CloseLedger()

	fmt.Printf("ledger %d closed at %s with %d transactions:\n",
		ledger.Index, ledger.CloseTime.Format("2006-01-02 15:04:05"), len(ledger.Transactions))
	for _, tx := range ledger.Transactions {
		fmt.Printf("  %-8s %-28s -> %s\n", tx.Type, tx.Amount, tx.Result)
	}

	fmt.Printf("\nalice USD balance: %d (fixed-point ×1e6)\n", state.IOUBalance(alice, gateway, "USD"))
	fmt.Printf("bob XRP balance:   %.6f XRP\n", float64(state.GetAccount(bob).Balance)/xrp.DropsPerXRP)
	fmt.Printf("fees burned:       %d drops\n", state.BurnedFees)
}
