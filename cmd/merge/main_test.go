package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/blobstore"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/rpcserve"
)

// emitTezosShard builds a Tezos shard over blocks [from, to] with one
// deterministic endorsement per block and emits it to location.
func emitTezosShard(t *testing.T, location string, from, to int64) {
	t.Helper()
	st, err := core.NewShardState("tezos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]any, 0, to-from+1)
	for num := from; num <= to; num++ {
		batch = append(batch, &rpcserve.TezosBlockJSON{
			Level:     num,
			Timestamp: chain.ObservationStart.Add(time.Duration(num) * time.Hour).Format(time.RFC3339),
			Baker:     "tz1baker",
			Operations: []rpcserve.TezosOperationJSON{
				{Kind: "endorsement", Source: "tz1alice", Level: num - 1, SlotCount: 2},
			},
		})
	}
	if err := st.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	st.SetCovered(core.BlockRange{From: from, To: to})
	if _, err := core.EmitShard(context.Background(), location, st); err != nil {
		t.Fatal(err)
	}
}

// TestMergeRendersWholeRange: shards pooled from several stores merge into
// the same figures a single state over the whole range renders.
func TestMergeRendersWholeRange(t *testing.T) {
	emitTezosShard(t, "mem://merge-a", 1, 7)
	emitTezosShard(t, "mem://merge-b", 8, 20)
	emitTezosShard(t, "mem://merge-b", 21, 24)

	whole, err := core.NewShardState("tezos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]any, 0, 24)
	for num := int64(1); num <= 24; num++ {
		batch = append(batch, &rpcserve.TezosBlockJSON{
			Level:     num,
			Timestamp: chain.ObservationStart.Add(time.Duration(num) * time.Hour).Format(time.RFC3339),
			Baker:     "tz1baker",
			Operations: []rpcserve.TezosOperationJSON{
				{Kind: "endorsement", Source: "tz1alice", Level: num - 1, SlotCount: 2},
			},
		})
	}
	if err := whole.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	want := whole.Summary().Render()

	var out, diag bytes.Buffer
	if err := run(context.Background(), []string{"mem://merge-a", "mem://merge-b"}, &out, &diag); err != nil {
		t.Fatalf("merge: %v\n%s", err, diag.String())
	}
	if out.String() != want {
		t.Fatalf("merged figures diverged\n--- want ---\n%s\n--- got ---\n%s", want, out.String())
	}
	if !strings.Contains(diag.String(), "3 shard(s)") {
		t.Fatalf("diagnostics missing shard count:\n%s", diag.String())
	}
}

// TestMergeRefusesOverlap: two stores whose shards overlap must fail
// loudly, naming the ranges AND the offending blobs (store URL + key), so
// a coordinator log says which objects to inspect.
func TestMergeRefusesOverlap(t *testing.T) {
	emitTezosShard(t, "mem://merge-ov-a", 1, 10)
	emitTezosShard(t, "mem://merge-ov-b", 8, 20)
	err := run(context.Background(), []string{"mem://merge-ov-a", "mem://merge-ov-b"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping shards merged (err %v)", err)
	}
	for _, want := range []string{
		"tezos-0000000001-0000000010.shard", "at mem://merge-ov-a",
		"tezos-0000000008-0000000020.shard", "at mem://merge-ov-b",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("overlap error %q does not name %q", err, want)
		}
	}
}

// TestMergeRefusesGap: a missing slice (a shard worker that never finished)
// must fail loudly, not render short figures — and name the flanking blobs.
func TestMergeRefusesGap(t *testing.T) {
	emitTezosShard(t, "mem://merge-gap", 1, 10)
	emitTezosShard(t, "mem://merge-gap", 15, 20)
	err := run(context.Background(), []string{"mem://merge-gap"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped shards merged (err %v)", err)
	}
	for _, want := range []string{
		"tezos-0000000001-0000000010.shard", "tezos-0000000015-0000000020.shard", "at mem://merge-gap",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gap error %q does not name %q", err, want)
		}
	}
}

// TestMergeNamesCorruptBlob: an undecodable shard blob error carries the
// store URL and key.
func TestMergeNamesCorruptBlob(t *testing.T) {
	const store = "mem://merge-corrupt"
	emitTezosShard(t, store, 1, 10)
	st, err := blobstore.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(context.Background(), "tezos-0000000011-0000000020.shard", []byte("not a shard")); err != nil {
		t.Fatal(err)
	}
	err = run(context.Background(), []string{store}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "corrupt shard tezos-0000000011-0000000020.shard at mem://merge-corrupt") {
		t.Fatalf("corrupt blob error does not name the blob: %v", err)
	}
}

// TestMergeEmptyStore: a location with no shard blobs is a loud error —
// a coordinator pointed at the wrong store must not print empty figures.
func TestMergeEmptyStore(t *testing.T) {
	err := run(context.Background(), []string{"mem://merge-empty"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no *.shard blobs") {
		t.Fatalf("empty store merged (err %v)", err)
	}
}

// TestMergeMultiChain: shards of different chains pooled in one store are
// grouped and rendered per chain in name order.
func TestMergeMultiChain(t *testing.T) {
	const store = "mem://merge-multichain"
	emitTezosShard(t, store, 1, 8)

	xst, err := core.NewShardState("xrp", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := xst.IngestBatch([]any{&rpcserve.XRPLedgerJSON{
		LedgerIndex: 1,
		CloseTime:   chain.ObservationStart.Format(time.RFC3339),
		TxCount:     1,
		Transactions: []rpcserve.XRPTxJSON{{
			Hash: "TX1", TransactionType: "Payment", Account: "rAlice",
			Destination: "rBob", Result: "tesSUCCESS", Sequence: 1,
			Amount: &rpcserve.XRPAmountJSON{Currency: "XRP", Value: 1000},
		}},
	}}); err != nil {
		t.Fatal(err)
	}
	xst.SetCovered(core.BlockRange{From: 1, To: 1})
	if _, err := core.EmitShard(context.Background(), store, xst); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(context.Background(), []string{store}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	tezosIdx := strings.Index(out.String(), "--- tezos figures ---")
	xrpIdx := strings.Index(out.String(), "--- xrp figures ---")
	if tezosIdx < 0 || xrpIdx < 0 || tezosIdx > xrpIdx {
		t.Fatalf("expected tezos then xrp figure sections:\n%s", out.String())
	}
}
