// Command merge is the distributed-crawl coordinator: it loads the shard
// blobs that cmd/crawl -emit-shard (or cmd/report -replay -emit-shard)
// workers serialized into blob stores, validates that each chain's shards
// are compatible and tile a contiguous block range, folds them through the
// same core.ShardState merge a single process uses, and prints each
// chain's deterministic figures section to stdout — byte-identical to
// what one process crawling the whole range would have printed, which the
// CI distributed job diffs.
//
// Validation is loud by design: mixed chains in one merge group, mismatched
// aggregation windows, overlapping shard ranges (blocks counted twice) and
// gaps (blocks never crawled) are all hard errors naming the offending
// shards, never silently "merged around". Fences are verified too: each
// store's lease and run-state records (coord.FenceIndex) are folded into a
// per-task fence floor, and a shard stamped with an older fence — a zombie
// worker's emission, superseded by a lease reclaim — is refused by name.
//
// Usage:
//
//	merge STORE [STORE...]
//
// Each STORE is a blob-store location (path, file://, mem://, s3://)
// holding *.shard blobs. Shards from all stores are pooled and grouped by
// chain; figures print in chain-name order. Progress and per-shard
// diagnostics go to stderr so stdout stays diffable.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/blobstore"
	"repro/internal/coord"
	"repro/internal/core"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: merge STORE [STORE...]\n\nmerge distributed crawl shards (cmd/crawl -emit-shard) and print figures\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(context.Background(), flag.Args(), os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "merge:", err)
		os.Exit(1)
	}
}

// run loads every shard at the given store locations, merges per chain and
// renders the figures. It is the whole command behind flag parsing so
// tests can drive it hermetically.
func run(ctx context.Context, locations []string, out, diag io.Writer) error {
	// Load with provenance: every validation error below names the store
	// URL and key of the offending blob, so a coordinator log reading
	// "shards X and Y overlap" points at objects, not just arithmetic.
	// Alongside the shards, each store's lease lineage is folded into one
	// fence-floor index: floors union across stores by max, since a task's
	// lease record and its shard may live in different stores of the pool.
	byChain := make(map[string][]core.ShardBlob)
	minFence := make(map[string]uint64)
	for _, loc := range locations {
		store, err := blobstore.Resolve(loc)
		if err != nil {
			return err
		}
		blobs, err := core.LoadShardBlobsFrom(ctx, store)
		if err != nil {
			return err
		}
		for _, b := range blobs {
			fmt.Fprintf(diag, "merge: loaded %s shard %s (window %s, fence %d) from %s\n",
				b.State.Chain(), b.State.Covered(), b.State.Window(), b.Fence, b.Ref())
			byChain[b.State.Chain()] = append(byChain[b.State.Chain()], b)
		}
		index, err := coord.FenceIndex(ctx, store)
		if err != nil {
			return err
		}
		for task, fence := range index {
			if fence > minFence[task] {
				minFence[task] = fence
			}
		}
	}
	if len(minFence) > 0 {
		fmt.Fprintf(diag, "merge: fence floors recorded for %d task(s)\n", len(minFence))
	}
	chains := make([]string, 0, len(byChain))
	for c := range byChain {
		chains = append(chains, c)
	}
	sort.Strings(chains)
	for _, c := range chains {
		merged, _, err := core.MergeShardBlobsFenced(byChain[c], false, minFence)
		if err != nil {
			return err
		}
		fmt.Fprintf(diag, "merge: %s: %d shard(s) covering %s\n", c, len(byChain[c]), merged.Covered())
		fmt.Fprint(out, merged.Summary().Render())
	}
	return nil
}
