// Command chainsim generates the three calibrated chain histories and
// serves them over the same network APIs the paper crawled:
//
//   - EOS:   HTTP JSON RPC (POST /v1/chain/get_info, /v1/chain/get_block)
//   - Tezos: REST RPC (GET /chains/main/blocks/{level})
//   - XRP:   rippled-style WebSocket (ledger, server_info) plus an
//     explorer with account metadata and exchange rates
//
// It prints the listening endpoints and blocks until interrupted, so
// cmd/crawl (or any HTTP/WebSocket client) can collect from it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/explorer"
	"repro/internal/pipeline"
	"repro/internal/rpcserve"
	"repro/internal/workload"
)

func main() {
	eosScale := flag.Int64("eos-scale", 50_000, "EOS scale divisor")
	tezosScale := flag.Int64("tezos-scale", 800, "Tezos scale divisor")
	xrpScale := flag.Int64("xrp-scale", 20_000, "XRP scale divisor")
	seed := flag.Int64("seed", 1, "scenario seed")
	addr := flag.String("addr", "127.0.0.1", "listen address")
	stageWorkers := flag.Int("stage-workers", 0, "max concurrent history builds (0 = all three at once)")
	selfCheck := flag.Int64("selfcheck", 25, "stream the newest N blocks of each chain through the ingestion API after startup (0 disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "chainsim:", err)
		os.Exit(1)
	}

	// The three histories are independent, so build them through the same
	// stage scheduler the measurement pipeline uses.
	var (
		eosScenario   *workload.EOSScenario
		tezosScenario *workload.TezosScenario
		xrpScenario   *workload.XRPScenario
	)
	fmt.Println("chainsim: generating EOS, Tezos and XRP histories…")
	metrics, err := pipeline.RunStages(context.Background(), []pipeline.Stage{
		{Name: "eos", Run: func(context.Context) (pipeline.StageStats, error) {
			s, err := workload.BuildEOS(workload.EOSOptions{Scale: *eosScale, Seed: *seed})
			if err != nil {
				return pipeline.StageStats{}, err
			}
			s.Run()
			eosScenario = s
			return pipeline.StageStats{Blocks: int64(s.Chain.HeadNum())}, nil
		}},
		{Name: "tezos", Run: func(context.Context) (pipeline.StageStats, error) {
			s, err := workload.BuildTezos(workload.TezosOptions{Scale: *tezosScale, Seed: *seed})
			if err != nil {
				return pipeline.StageStats{}, err
			}
			if _, err := s.Run(); err != nil {
				return pipeline.StageStats{}, err
			}
			tezosScenario = s
			return pipeline.StageStats{Blocks: s.Chain.HeadLevel()}, nil
		}},
		{Name: "xrp", Run: func(context.Context) (pipeline.StageStats, error) {
			s, err := workload.BuildXRP(workload.XRPOptions{Scale: *xrpScale, Seed: *seed})
			if err != nil {
				return pipeline.StageStats{}, err
			}
			s.Run()
			xrpScenario = s
			return pipeline.StageStats{Blocks: s.State.HeadIndex()}, nil
		}},
	}, *stageWorkers)
	if err != nil {
		fail(err)
	}
	for _, m := range metrics {
		fmt.Printf("chainsim: %s history ready in %s (%d blocks)\n", m.Name, m.Elapsed.Round(time.Millisecond), m.Blocks)
	}

	dir := explorer.NewDirectory(xrpScenario.State)
	for a, username := range xrpScenario.Usernames {
		dir.Register(a, username)
	}
	oracle := explorer.NewRateOracle(xrpScenario.State)

	serve := func(name string, h http.Handler) string {
		ln, err := net.Listen("tcp", *addr+":0")
		if err != nil {
			fail(err)
		}
		go func() {
			if err := (&http.Server{Handler: h}).Serve(ln); err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "chainsim: %s server: %v\n", name, err)
			}
		}()
		return ln.Addr().String()
	}

	eosAddr := serve("eos", rpcserve.NewEOSServer(eosScenario.Chain))
	tezosAddr := serve("tezos", rpcserve.NewTezosServer(tezosScenario.Chain))
	xrpAddr := serve("xrp", rpcserve.NewXRPServer(xrpScenario.State))
	explorerAddr := serve("explorer", explorer.NewServer(dir, oracle))

	// Verify each served API end to end through the streaming ingestion
	// path cmd/crawl and the pipeline use: stream the newest blocks into
	// the chain's aggregator and report what decoded.
	if *selfCheck > 0 {
		ctx := context.Background()
		check := func(name string, f collect.BlockFetcher, dec core.Decoder, head int64, workers int, txs func() int64) {
			from := head - *selfCheck + 1
			if from < 1 {
				from = 1
			}
			res, _, err := core.IngestCrawl(ctx, f, collect.CrawlConfig{From: from, To: head, Workers: workers}, dec, core.IngestConfig{})
			if err != nil {
				fail(fmt.Errorf("%s self-check: %w", name, err))
			}
			fmt.Printf("chainsim: %s self-check: streamed %d blocks, %d txs/ops\n", name, res.Blocks, txs())
		}
		eosAgg := core.NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
		check("eos", collect.NewEOSClient("http://"+eosAddr), core.EOSDecoder{Agg: eosAgg},
			int64(eosScenario.Chain.HeadNum()), 4, func() int64 { return eosAgg.Transactions })
		tezosAgg := core.NewTezosAggregator(chain.ObservationStart, 6*time.Hour)
		check("tezos", collect.NewTezosClient("http://"+tezosAddr), core.TezosDecoder{Agg: tezosAgg},
			tezosScenario.Chain.HeadLevel(), 4, func() int64 { return tezosAgg.Operations })
		xrpAgg := core.NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
		xrpClient := collect.NewXRPClient("ws://" + xrpAddr)
		check("xrp", xrpClient, core.XRPDecoder{Agg: xrpAgg},
			xrpScenario.State.HeadIndex(), 1, func() int64 { return xrpAgg.Transactions })
		xrpClient.Close()
	}

	fmt.Printf("EOS RPC:       http://%s (head block %d)\n", eosAddr, eosScenario.Chain.HeadNum())
	fmt.Printf("Tezos RPC:     http://%s (head level %d)\n", tezosAddr, tezosScenario.Chain.HeadLevel())
	fmt.Printf("XRP WebSocket: ws://%s (head ledger %d)\n", xrpAddr, xrpScenario.State.HeadIndex())
	fmt.Printf("Explorer API:  http://%s\n", explorerAddr)
	fmt.Println("chainsim: serving; Ctrl-C to stop")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("chainsim: bye")
}
