// Command benchgate turns `go test -bench` output into a regression gate:
// it parses benchmark result lines, optionally snapshots them as JSON, and
// compares them benchstat-style against a committed baseline
// (BENCH_baseline.json), failing the build when time/op or allocs/op
// regress beyond a threshold. It is self-contained (no x/perf dependency),
// so the gate runs in CI and on developer machines with nothing installed.
//
// Usage:
//
//	go test -bench . -benchmem ./... | tee bench.out
//	go run ./cmd/benchgate -baseline BENCH_baseline.json bench.out
//	go run ./cmd/benchgate -write BENCH_5.json bench.out          # snapshot
//	go run ./cmd/benchgate -baseline old.json -threshold 10 bench.out
//	go run ./cmd/benchgate -update -baseline BENCH_baseline.json bench.out
//
// Comparison rules:
//
//   - allocs/op gates at the same percentage threshold plus one alloc of
//     absolute slack (concurrent benches jitter by a few allocations);
//     unlike time it is machine-independent, so a committed baseline is
//     comparable anywhere.
//   - time/op gates with the threshold and an absolute floor (see
//     -floor-ns): sub-microsecond benches jitter too much in relative
//     terms for a percentage alone. Against a baseline recorded on a
//     different machine class, absolute times shift — refresh the
//     baseline when the reference machine changes.
//   - A baseline benchmark missing from the input fails the gate: a
//     renamed benchmark or a drifted -bench regex must not silently
//     shrink coverage to zero. New benchmarks (present only in the
//     input) land freely; retiring one means refreshing the baseline in
//     the same change.
//
// -update is how the baseline is refreshed: it rewrites the -baseline
// file from the run's parsed results (printing the old-vs-new delta table
// first, so the refresh is reviewable) instead of gating against it. Use
// it when a perf PR moves the floor or the reference machine changes —
// the baseline never needs hand-editing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// HasMem marks results from -benchmem runs; only those gate allocs.
	HasMem bool `json:"has_mem,omitempty"`
}

// Snapshot is the JSON trajectory artifact: one file per PR (BENCH_N.json)
// plus the rolling BENCH_baseline.json the gate compares against.
type Snapshot struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `go test -bench` result rows, e.g.
// BenchmarkDecodeEOS/wire-4   50000   30123 ns/op   12 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var (
	memCol   = regexp.MustCompile(`([0-9]+) B/op`)
	allocCol = regexp.MustCompile(`([0-9]+) allocs/op`)
)

func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		res := Result{NsPerOp: ns}
		if b := memCol.FindStringSubmatch(m[3]); b != nil {
			res.BytesPerOp, _ = strconv.ParseInt(b[1], 10, 64)
			res.HasMem = true
		}
		if a := allocCol.FindStringSubmatch(m[3]); a != nil {
			res.AllocsPerOp, _ = strconv.ParseInt(a[1], 10, 64)
			res.HasMem = true
		}
		// Repeated runs of the same benchmark: keep the fastest, the
		// conventional noise-rejection benchstat applies too.
		if prev, ok := out[m[1]]; !ok || ns < prev.NsPerOp {
			out[m[1]] = res
		}
	}
	return out, sc.Err()
}

func loadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	return s, nil
}

type regression struct {
	name, metric string
	old, new     float64
}

// compare returns the regressions new shows over old given the threshold
// (percent) and the absolute time floor in nanoseconds. A baseline
// benchmark absent from cur is itself a regression (lost coverage).
// Benchmarks matching timeSkip gate on allocs only — for IO-bound benches
// (archive writes) whose wall time swings with system state far beyond
// any honest threshold while their allocation profile stays exact.
func compare(old, cur map[string]Result, thresholdPct, floorNs float64, timeSkip *regexp.Regexp) []regression {
	var regs []regression
	for name, o := range old {
		n, ok := cur[name]
		if !ok {
			regs = append(regs, regression{name, "missing", o.NsPerOp, 0})
			continue
		}
		limit := o.NsPerOp * (1 + thresholdPct/100)
		if n.NsPerOp > limit && n.NsPerOp-o.NsPerOp > floorNs &&
			(timeSkip == nil || !timeSkip.MatchString(name)) {
			regs = append(regs, regression{name, "time/op", o.NsPerOp, n.NsPerOp})
		}
		if o.HasMem && n.HasMem {
			// +1 absolute slack: a 0→1 alloc change is infinite in
			// relative terms but usually incidental; 0→2 is a real leak.
			allocLimit := float64(o.AllocsPerOp)*(1+thresholdPct/100) + 1
			if float64(n.AllocsPerOp) > allocLimit {
				regs = append(regs, regression{name, "allocs/op", float64(o.AllocsPerOp), float64(n.AllocsPerOp)})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].name != regs[j].name {
			return regs[i].name < regs[j].name
		}
		return regs[i].metric < regs[j].metric
	})
	return regs
}

// writeSnapshot persists parsed results as a snapshot JSON.
func writeSnapshot(path string, cur map[string]Result, note string) error {
	data, err := json.MarshalIndent(Snapshot{Note: note, Benchmarks: cur}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runUpdate rewrites the baseline snapshot from cur. An existing baseline
// prints its delta table first so the refresh is reviewable in the diff; a
// missing or unreadable baseline is not an error — -update is also how the
// very first baseline gets recorded.
func runUpdate(w io.Writer, baselinePath string, cur map[string]Result, note string) error {
	if old, err := loadSnapshot(baselinePath); err == nil {
		table(w, old.Benchmarks, cur)
	}
	if err := writeSnapshot(baselinePath, cur, note); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchgate: baseline %s rewritten with %d benchmark(s)\n", baselinePath, len(cur))
	return nil
}

// table prints a benchstat-style old-vs-new delta table for every
// benchmark present on both sides.
func table(w io.Writer, old, cur map[string]Result) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return
	}
	fmt.Fprintf(w, "%-60s %14s %14s %8s %12s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	for _, name := range names {
		o, n := old[name], cur[name]
		delta := "~"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
		fmt.Fprintf(w, "%-60s %14.1f %14.1f %8s %12d %12d\n",
			name, o.NsPerOp, n.NsPerOp, delta, o.AllocsPerOp, n.AllocsPerOp)
	}
}

func main() {
	baseline := flag.String("baseline", "", "baseline snapshot JSON to gate against")
	write := flag.String("write", "", "write the parsed results as a snapshot JSON")
	update := flag.Bool("update", false, "rewrite the -baseline snapshot from this run instead of gating against it")
	note := flag.String("note", "", "note recorded in the written snapshot")
	threshold := flag.Float64("threshold", 15, "regression threshold in percent for time/op and allocs/op")
	floorNs := flag.Float64("floor-ns", 200, "ignore time/op regressions smaller than this absolute ns delta")
	timeSkipPat := flag.String("time-skip", "", "regexp of benchmarks whose time/op is informational only (allocs still gate)")
	flag.Parse()

	var timeSkip *regexp.Regexp
	if *timeSkipPat != "" {
		var err error
		if timeSkip, err = regexp.Compile(*timeSkipPat); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: bad -time-skip pattern:", err)
			os.Exit(2)
		}
	}

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "benchgate: at most one input file (or stdin)")
		os.Exit(2)
	}

	cur, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results in input")
		os.Exit(1)
	}
	fmt.Printf("benchgate: parsed %d benchmark results\n", len(cur))

	if *write != "" {
		if err := writeSnapshot(*write, cur, *note); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: wrote %s\n", *write)
	}

	if *update {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchgate: -update needs -baseline (the snapshot to rewrite)")
			os.Exit(2)
		}
		if err := runUpdate(os.Stdout, *baseline, cur, *note); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		return
	}

	if *baseline == "" {
		return
	}
	base, err := loadSnapshot(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	table(os.Stdout, base.Benchmarks, cur)
	regs := compare(base.Benchmarks, cur, *threshold, *floorNs, timeSkip)
	if len(regs) == 0 {
		fmt.Printf("benchgate: no regressions beyond %.0f%% against %s\n", *threshold, *baseline)
		return
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) beyond %.0f%%:\n", len(regs), *threshold)
	for _, r := range regs {
		if r.metric == "missing" {
			fmt.Fprintf(os.Stderr, "  %-60s missing from input (baseline %.1f ns/op) — renamed bench or drifted -bench regex?\n",
				r.name, r.old)
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-60s %-10s %14.1f -> %14.1f (%+.1f%%)\n",
			r.name, r.metric, r.old, r.new, 100*(r.new-r.old)/r.old)
	}
	os.Exit(1)
}
