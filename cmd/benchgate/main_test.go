package main

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamIngest/callback-sink         	      20	  11254042 ns/op	 3406574 B/op	   58705 allocs/op
BenchmarkStreamIngest/stream-batched        	      20	  11373274 ns/op	 3404476 B/op	   57955 allocs/op
BenchmarkDecodeEOS/wire-4                   	   50000	     30123 ns/op	       0 B/op	       0 allocs/op
BenchmarkGzipSizer 	     100	      2837 ns/op	 360.96 MB/s	    8067 B/op	       0 allocs/op
BenchmarkPlainTime 	     100	      1500 ns/op
not a bench line
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("parsed %d results, want 5: %#v", len(got), got)
	}
	wire := got["BenchmarkDecodeEOS/wire"]
	if wire.NsPerOp != 30123 || wire.AllocsPerOp != 0 || !wire.HasMem {
		t.Fatalf("wire bench parsed wrong: %+v", wire)
	}
	sizer := got["BenchmarkGzipSizer"]
	if sizer.NsPerOp != 2837 || sizer.BytesPerOp != 8067 {
		t.Fatalf("MB/s column broke parsing: %+v", sizer)
	}
	plain := got["BenchmarkPlainTime"]
	if plain.HasMem {
		t.Fatalf("plain bench should not gate allocs: %+v", plain)
	}
	stream := got["BenchmarkStreamIngest/stream-batched"]
	if stream.AllocsPerOp != 57955 {
		t.Fatalf("sub-benchmark parsed wrong: %+v", stream)
	}
}

// TestParseSkippedAndMalformed feeds the parser the noise a real -bench run
// emits around skipped benchmarks: --- SKIP lines, b.Skip reasons, and rows
// with no timing at all. None of it may produce a Result — a benchmark that
// skipped must read as missing so the gate flags the lost coverage instead
// of comparing against garbage.
func TestParseSkippedAndMalformed(t *testing.T) {
	in := `
BenchmarkServeQuery-4     	   12345	     98765 ns/op	     512 B/op	       9 allocs/op
BenchmarkArchiveWrite-4   	--- SKIP: BenchmarkArchiveWrite-4
    bench_test.go:42: archive dir not writable
--- SKIP: BenchmarkReplay
BenchmarkNoTiming-4
BenchmarkBadNumber-4      	     100	     abc ns/op
PASS
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d results, want only the completed bench: %#v", len(got), got)
	}
	if _, ok := got["BenchmarkServeQuery"]; !ok {
		t.Fatalf("completed bench missing: %#v", got)
	}
}

// TestParseSubBenchmarkSuffixes pins the GOMAXPROCS-suffix stripping on
// names that themselves end in digits: only the final -N comes off, so
// sub-benchmarks parameterized by a number keep their identity.
func TestParseSubBenchmarkSuffixes(t *testing.T) {
	in := `
BenchmarkSweep/parallel-2-4   	100	2000 ns/op
BenchmarkSweep/parallel-8-4   	100	4000 ns/op
BenchmarkSweep/parallel-8-2   	100	3000 ns/op
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one trailing -N comes off: parallel-2-4 → parallel-2, and the
	// two parallel-8 rows from different -cpu counts collapse to the same
	// name with the fastest run winning. The surviving "-2"/"-8" is the
	// sweep parameter, not a CPU count.
	if len(got) != 2 {
		t.Fatalf("parsed %d names, want 2: %#v", len(got), got)
	}
	if r := got["BenchmarkSweep/parallel-2"]; r.NsPerOp != 2000 {
		t.Fatalf("parallel-2 = %+v, want 2000 ns/op", r)
	}
	if r := got["BenchmarkSweep/parallel-8"]; r.NsPerOp != 3000 {
		t.Fatalf("parallel-8 = %+v, want fastest of the collapsed rows (3000)", r)
	}
}

// TestCompareMixedMemColumns: the alloc gate needs -benchmem numbers on
// BOTH sides; a run without them (or a baseline without them) gates on time
// only instead of comparing real allocs against a default zero.
func TestCompareMixedMemColumns(t *testing.T) {
	old := map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 5, HasMem: true},
		"BenchmarkB": {NsPerOp: 1000},
	}
	cur := map[string]Result{
		"BenchmarkA": {NsPerOp: 1000}, // this run lacked -benchmem
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 999, HasMem: true},
	}
	if regs := compare(old, cur, 15, 200, nil); len(regs) != 0 {
		t.Fatalf("alloc gate ran without -benchmem on both sides: %+v", regs)
	}
}

func TestParseKeepsFastestRun(t *testing.T) {
	in := `
BenchmarkX-4   10   2000 ns/op   10 B/op   3 allocs/op
BenchmarkX-4   10   1000 ns/op   10 B/op   3 allocs/op
BenchmarkX-4   10   3000 ns/op   10 B/op   3 allocs/op
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].NsPerOp != 1000 {
		t.Fatalf("want fastest run kept, got %+v", got["BenchmarkX"])
	}
}

func TestCompareGates(t *testing.T) {
	old := map[string]Result{
		"BenchmarkA": {NsPerOp: 1_000_000, AllocsPerOp: 100, HasMem: true},
		"BenchmarkB": {NsPerOp: 1_000_000, AllocsPerOp: 0, HasMem: true},
	}

	// Within threshold: no regression; new benchmarks land freely.
	cur := map[string]Result{
		"BenchmarkA":   {NsPerOp: 1_100_000, AllocsPerOp: 110, HasMem: true},
		"BenchmarkB":   {NsPerOp: 990_000, AllocsPerOp: 1, HasMem: true},
		"BenchmarkNew": {NsPerOp: 42},
	}
	if regs := compare(old, cur, 15, 200, nil); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}

	// A baseline benchmark missing from the input is lost coverage and
	// must gate.
	delete(cur, "BenchmarkB")
	regs := compare(old, cur, 15, 200, nil)
	if len(regs) != 1 || regs[0].name != "BenchmarkB" || regs[0].metric != "missing" {
		t.Fatalf("missing baseline bench should gate: %+v", regs)
	}
	cur["BenchmarkB"] = Result{NsPerOp: 990_000, AllocsPerOp: 1, HasMem: true}

	// Time blowout and alloc leak both gate.
	cur = map[string]Result{
		"BenchmarkA": {NsPerOp: 1_300_000, AllocsPerOp: 100, HasMem: true},
		"BenchmarkB": {NsPerOp: 1_000_000, AllocsPerOp: 2, HasMem: true},
	}
	regs = compare(old, cur, 15, 200, nil)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %+v", regs)
	}
	if regs[0].name != "BenchmarkA" || regs[0].metric != "time/op" {
		t.Fatalf("wrong first regression: %+v", regs[0])
	}
	if regs[1].name != "BenchmarkB" || regs[1].metric != "allocs/op" {
		t.Fatalf("wrong second regression: %+v", regs[1])
	}

	// The absolute floor forgives relative jitter on tiny benches.
	old = map[string]Result{"BenchmarkTiny": {NsPerOp: 100}}
	cur = map[string]Result{"BenchmarkTiny": {NsPerOp: 250}}
	if regs := compare(old, cur, 15, 200, nil); len(regs) != 0 {
		t.Fatalf("floor should forgive 150ns jitter: %+v", regs)
	}
	cur = map[string]Result{"BenchmarkTiny": {NsPerOp: 400}}
	if regs := compare(old, cur, 15, 200, nil); len(regs) != 1 {
		t.Fatalf("300ns past floor should gate: %+v", regs)
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")

	// First update: no baseline exists yet; -update records one.
	first := map[string]Result{
		"BenchmarkA": {NsPerOp: 2000, AllocsPerOp: 10, HasMem: true},
		"BenchmarkB": {NsPerOp: 500},
	}
	var out strings.Builder
	if err := runUpdate(&out, path, first, "seed"); err != nil {
		t.Fatal(err)
	}
	snap, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Note != "seed" || len(snap.Benchmarks) != 2 {
		t.Fatalf("first update wrote %+v", snap)
	}

	// Second update replaces the numbers wholesale — including dropping a
	// retired benchmark — and prints the reviewable delta table.
	second := map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 0, HasMem: true},
	}
	out.Reset()
	if err := runUpdate(&out, path, second, "refresh"); err != nil {
		t.Fatal(err)
	}
	snap, err = loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Note != "refresh" {
		t.Fatalf("note not replaced: %+v", snap)
	}
	if len(snap.Benchmarks) != 1 || snap.Benchmarks["BenchmarkA"].NsPerOp != 1000 {
		t.Fatalf("baseline not rewritten: %+v", snap.Benchmarks)
	}
	if _, ok := snap.Benchmarks["BenchmarkB"]; ok {
		t.Fatal("retired benchmark survived the update")
	}
	if !strings.Contains(out.String(), "BenchmarkA") || !strings.Contains(out.String(), "-50.0%") {
		t.Fatalf("update table missing delta: %q", out.String())
	}

	// The rewritten baseline is immediately usable by the gate.
	if regs := compare(snap.Benchmarks, second, 15, 200, nil); len(regs) != 0 {
		t.Fatalf("fresh baseline should gate clean: %+v", regs)
	}
}

func TestCompareTimeSkip(t *testing.T) {
	old := map[string]Result{
		"BenchmarkArchiveWrite": {NsPerOp: 10_000, AllocsPerOp: 0, HasMem: true},
	}
	cur := map[string]Result{
		"BenchmarkArchiveWrite": {NsPerOp: 31_000, AllocsPerOp: 0, HasMem: true},
	}
	skip := regexp.MustCompile(`^BenchmarkArchive`)
	if regs := compare(old, cur, 15, 200, skip); len(regs) != 0 {
		t.Fatalf("time-skip should forgive IO-bound wall time: %+v", regs)
	}
	// Allocs still gate for skipped benchmarks.
	cur["BenchmarkArchiveWrite"] = Result{NsPerOp: 31_000, AllocsPerOp: 6, HasMem: true}
	if regs := compare(old, cur, 15, 200, skip); len(regs) != 1 || regs[0].metric != "allocs/op" {
		t.Fatalf("alloc leak must still gate under time-skip: %+v", regs)
	}
}
