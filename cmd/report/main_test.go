package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/chain"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/rpcserve"
)

func TestValidateParallel(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		set       bool
		replaying bool
		wantErr   string
	}{
		{name: "default no replay", n: 0, set: false, replaying: false},
		{name: "default with replay", n: 0, set: false, replaying: true},
		{name: "sweep with replay", n: 3, set: true, replaying: true},
		// The regression: an explicit -parallel 0 or negative used to be
		// accepted and silently degenerate to a single run.
		{name: "explicit zero", n: 0, set: true, replaying: true, wantErr: "not a sweep"},
		{name: "explicit negative", n: -2, set: true, replaying: true, wantErr: "not a sweep"},
		{name: "explicit zero without replay", n: 0, set: true, replaying: false, wantErr: "not a sweep"},
		{name: "sweep without replay", n: 3, set: true, replaying: false, wantErr: "needs -replay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateParallel(tc.n, tc.set, tc.replaying)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestReplayArchivesRangeMiss: a -from/-to window beyond an archive's
// blocks must skip it cleanly (no figures, no error) — the range open
// indexes zero blocks instead of failing, so a fleet-wide ranged replay
// tolerates archives that end before the window.
func TestReplayArchivesRangeMiss(t *testing.T) {
	loc := "mem://report-range-miss/eos"
	w, err := archive.NewWriter(archive.WriterConfig{Dir: loc, Chain: "eos"})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(1); num <= 8; num++ {
		if err := w.Append(num, []byte(`{"opaque":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := replayArchives(context.Background(), loc, 1, 0, 100, 200, cli.ShardSpec{}, "", &out); err != nil {
		t.Fatalf("ranged replay past the archive failed: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("ranged replay past the archive printed figures:\n%s", out.String())
	}
}

// TestValidateRange pins the replay-slice validation now served by
// internal/cli's ArchiveFlags in ModeReport — the CLI error contract this
// command had before the extraction.
func TestValidateRange(t *testing.T) {
	cases := []struct {
		name      string
		from, to  int64
		replaying bool
		wantErr   string
	}{
		{name: "unset no replay", replaying: false},
		{name: "unset with replay", replaying: true},
		{name: "range with replay", from: 10, to: 20, replaying: true},
		{name: "single block", from: 7, to: 7, replaying: true},
		{name: "range without replay", from: 10, to: 20, replaying: false, wantErr: "need -replay"},
		{name: "from only", from: 10, replaying: true, wantErr: "not a block range"},
		{name: "to only", to: 20, replaying: true, wantErr: "not a block range"},
		{name: "inverted", from: 20, to: 10, replaying: true, wantErr: "not a block range"},
		{name: "negative from", from: -1, to: 10, replaying: true, wantErr: "not a block range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var af cli.ArchiveFlags
			af.Register(flag.NewFlagSet("report", flag.ContinueOnError), cli.ModeReport)
			af.From, af.To = tc.from, tc.to
			if tc.replaying {
				af.Replay = "mem://validate-range"
			}
			err := af.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateShard(t *testing.T) {
	sharded := cli.ShardSpec{I: 1, N: 3}
	cases := []struct {
		name      string
		shard     cli.ShardSpec
		emit      string
		parallel  int
		replaying bool
		wantErr   string
	}{
		{name: "unset"},
		{name: "shard with replay", shard: sharded, replaying: true},
		{name: "emit with replay", emit: "mem://x", replaying: true},
		{name: "shard without replay", shard: sharded, wantErr: "need -replay"},
		{name: "emit without replay", emit: "mem://x", wantErr: "need -replay"},
		{name: "shard with parallel", shard: sharded, parallel: 2, replaying: true, wantErr: "-shard with -parallel"},
		{name: "bad emit store", emit: "gopher://x", replaying: true, wantErr: "unsupported scheme"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateShard(tc.shard, tc.emit, tc.parallel, tc.replaying)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestReplayShardEmitMerge: the offline distributed path — three -shard
// i/3 replays of one archived crawl each emit their drained state, and
// merging the three shards renders byte-identical figures to a whole-
// archive replay.
func TestReplayShardEmitMerge(t *testing.T) {
	loc := "mem://report-shard-emit/eos"
	w, err := archive.NewWriter(archive.WriterConfig{Dir: loc, Chain: "eos", SegmentBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	const total = 31
	for num := int64(total); num >= 1; num-- {
		blk := rpcserve.EOSBlockJSON{
			BlockNum:  uint32(num),
			Timestamp: chain.ObservationStart.Add(time.Duration(num) * time.Minute).Format("2006-01-02T15:04:05.000"),
			Producer:  "eosio",
		}
		var trx rpcserve.EOSTrxJSON
		trx.Status = "executed"
		trx.Trx.Transaction.Actions = []rpcserve.EOSActionJSON{{
			Account: "eosio.token", Name: "transfer",
			Authorization: []map[string]string{{"actor": "alice"}},
			Data:          map[string]string{"from": "alice", "to": "bob", "quantity": "1.0000 EOS"},
		}}
		blk.Transactions = append(blk.Transactions, trx)
		raw, err := json.Marshal(blk)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(num, raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var whole bytes.Buffer
	if err := replayArchives(context.Background(), loc, 2, 0, 0, 0, cli.ShardSpec{}, "", &whole); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(whole.String(), "--- eos figures ---") {
		t.Fatalf("whole replay printed no figures:\n%s", whole.String())
	}

	const store = "mem://report-shard-emit-shards"
	for i := 1; i <= 3; i++ {
		var out bytes.Buffer
		if err := replayArchives(context.Background(), loc, 2, 0, 0, 0, cli.ShardSpec{I: i, N: 3}, store, &out); err != nil {
			t.Fatalf("shard %d/3: %v", i, err)
		}
	}
	shards, err := core.LoadShards(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("loaded %d shards, want 3", len(shards))
	}
	merged, err := core.MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Summary().Render(); got != whole.String() {
		t.Fatalf("3-way sharded replay diverged from whole replay\n--- whole ---\n%s\n--- merged ---\n%s", whole.String(), got)
	}
}
