package main

import (
	"strings"
	"testing"
)

func TestValidateParallel(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		set       bool
		replaying bool
		wantErr   string
	}{
		{name: "default no replay", n: 0, set: false, replaying: false},
		{name: "default with replay", n: 0, set: false, replaying: true},
		{name: "sweep with replay", n: 3, set: true, replaying: true},
		// The regression: an explicit -parallel 0 or negative used to be
		// accepted and silently degenerate to a single run.
		{name: "explicit zero", n: 0, set: true, replaying: true, wantErr: "not a sweep"},
		{name: "explicit negative", n: -2, set: true, replaying: true, wantErr: "not a sweep"},
		{name: "explicit zero without replay", n: 0, set: true, replaying: false, wantErr: "not a sweep"},
		{name: "sweep without replay", n: 3, set: true, replaying: false, wantErr: "needs -replay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateParallel(tc.n, tc.set, tc.replaying)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
