package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/archive"
)

func TestValidateParallel(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		set       bool
		replaying bool
		wantErr   string
	}{
		{name: "default no replay", n: 0, set: false, replaying: false},
		{name: "default with replay", n: 0, set: false, replaying: true},
		{name: "sweep with replay", n: 3, set: true, replaying: true},
		// The regression: an explicit -parallel 0 or negative used to be
		// accepted and silently degenerate to a single run.
		{name: "explicit zero", n: 0, set: true, replaying: true, wantErr: "not a sweep"},
		{name: "explicit negative", n: -2, set: true, replaying: true, wantErr: "not a sweep"},
		{name: "explicit zero without replay", n: 0, set: true, replaying: false, wantErr: "not a sweep"},
		{name: "sweep without replay", n: 3, set: true, replaying: false, wantErr: "needs -replay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateParallel(tc.n, tc.set, tc.replaying)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestReplayArchivesRangeMiss: a -from/-to window beyond an archive's
// blocks must skip it cleanly (no figures, no error) — the range open
// indexes zero blocks instead of failing, so a fleet-wide ranged replay
// tolerates archives that end before the window.
func TestReplayArchivesRangeMiss(t *testing.T) {
	loc := "mem://report-range-miss/eos"
	w, err := archive.NewWriter(archive.WriterConfig{Dir: loc, Chain: "eos"})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(1); num <= 8; num++ {
		if err := w.Append(num, []byte(`{"opaque":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := replayArchives(context.Background(), loc, 1, 0, 100, 200, &out); err != nil {
		t.Fatalf("ranged replay past the archive failed: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("ranged replay past the archive printed figures:\n%s", out.String())
	}
}

func TestValidateRange(t *testing.T) {
	cases := []struct {
		name      string
		from, to  int64
		replaying bool
		wantErr   string
	}{
		{name: "unset no replay", replaying: false},
		{name: "unset with replay", replaying: true},
		{name: "range with replay", from: 10, to: 20, replaying: true},
		{name: "single block", from: 7, to: 7, replaying: true},
		{name: "range without replay", from: 10, to: 20, replaying: false, wantErr: "need -replay"},
		{name: "from only", from: 10, replaying: true, wantErr: "not a block range"},
		{name: "to only", to: 20, replaying: true, wantErr: "not a block range"},
		{name: "inverted", from: 20, to: 10, replaying: true, wantErr: "not a block range"},
		{name: "negative from", from: -1, to: 10, replaying: true, wantErr: "not a block range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRange(tc.from, tc.to, tc.replaying)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
