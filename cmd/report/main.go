// Command report runs the full reproduction pipeline — calibrated
// workloads, chain simulators, network crawl, measurement — and prints
// every table and figure from the paper's evaluation.
//
// Usage:
//
//	report [-eos-scale N] [-tezos-scale N] [-xrp-scale N] [-gov-scale N]
//	       [-seed N] [-workers N] [-figure name] [-archive STORE]
//	report -replay STORE [-parallel N] [-from N -to N]
//	report -replay STORE -shard i/n [-emit-shard STORE2]
//
// Smaller scales simulate more traffic and converge closer to the paper's
// percentages; the defaults finish in a few seconds.
//
// STORE is a blob-store location: a plain directory path, file://PATH,
// mem://NAME, s3://BUCKET/PREFIX?endpoint=URL, or null:// (write-only).
//
// With -archive STORE every stage tees its raw block stream into
// per-stage archives under STORE, and a rerun with the same flag replays
// from them instead of crawling (see pipeline.Options.ArchiveDir).
//
// With -replay STORE the pipeline does not run at all: the command opens
// the archive (or each per-chain archive directly under STORE, as
// cmd/crawl -archive and pipeline ArchiveDir write them), walks the raw
// blocks segment-parallel through core.IngestArchive — the same decoders
// and mergeable shards a live crawl ingests through, minus the network —
// and prints each chain's deterministic figures section. The sections are
// byte-identical to what the live crawl printed, which the CI archive job
// verifies by diffing the two. With -from/-to only blocks in that range
// replay, and only the segments covering it are fetched and verified —
// the manifest's per-segment block-range index prunes the rest, which is
// what makes slicing a huge remote archive cheap.
//
// With -replay -parallel N the same archives replay N times concurrently —
// a sweep with zero refetching, each run using a different ingest worker
// count — and per-chain convergence bands (min/median/max of every figure
// across runs) print after the figure sections. The decode path is
// deliberately seed-free, so for the repo's deterministic decoders the
// band must collapse to a point ("band: point" on the last line of each
// band section), which the CI archive job asserts; a spread band flags an
// aggregate that depends on ingestion order, scheduling or worker count.
//
// With -replay -shard i/n only the i-th of n contiguous slices of each
// archive replays, and -emit-shard STORE2 serializes the drained shard
// state for cmd/merge — the offline counterpart of cmd/crawl's
// distributed-crawl flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/chain"
	"repro/internal/cli"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/prof"
)

func main() {
	opts := pipeline.DefaultOptions()
	flag.Int64Var(&opts.EOS.Scale, "eos-scale", opts.EOS.Scale, "EOS scale divisor (smaller = more traffic)")
	flag.Int64Var(&opts.Tezos.Scale, "tezos-scale", opts.Tezos.Scale, "Tezos scale divisor")
	flag.Int64Var(&opts.XRP.Scale, "xrp-scale", opts.XRP.Scale, "XRP scale divisor")
	flag.Int64Var(&opts.Gov.Scale, "gov-scale", opts.Gov.Scale, "governance replay scale divisor")
	seed := flag.Int64("seed", 1, "deterministic scenario seed (applied to every stage)")
	flag.IntVar(&opts.Workers, "workers", opts.Workers, "shared crawl worker pool size")
	flag.IntVar(&opts.StageWorkers, "stage-workers", opts.StageWorkers, "max concurrently running stages (0 = unbounded, 1 = sequential)")
	figure := flag.String("figure", "all", "figure to print: all, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, tps, cases, endpoints, stages")
	stress := flag.Bool("stress", false, "add the eidos-stress stage: the EOS workload at a hotter arrival rate, reported in the stage timings")
	stressScale := flag.Int64("stress-scale", 0, "eidos-stress scale divisor (0 = quarter of the EOS default)")
	var af cli.ArchiveFlags
	af.Register(flag.CommandLine, cli.ModeReport)
	parallel := flag.Int("parallel", 0, "with -replay: N concurrent sweep runs over the same archives (zero refetch, varying worker counts) with per-chain convergence bands appended")
	var shard cli.ShardSpec
	flag.Var(&shard, "shard", "with -replay: replay only the i-th of n contiguous slices of each archive ('i/n'); combine with -emit-shard and cmd/merge")
	emitShard := flag.String("emit-shard", "", "with -replay: serialize each replayed chain's drained shard state into this blob-store location for cmd/merge")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof evidence for perf work)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	// finish is the single exit point once profiling has started: every
	// path — success, pipeline error, unknown figure — finalizes the
	// profiles first (a failing run is exactly the one whose partial CPU
	// profile the user wants intact), and a profile-write failure turns an
	// otherwise-clean exit into a failure instead of passing silently.
	finish := func(code int, msg any) {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "report:", perr)
			if code == 0 {
				code = 1
			}
		}
		if msg != nil {
			fmt.Fprintln(os.Stderr, "report:", msg)
		}
		if code != 0 {
			os.Exit(code)
		}
	}
	parallelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelSet = true
		}
	})
	if err := validateParallel(*parallel, parallelSet, af.Replaying()); err != nil {
		finish(2, err)
	}
	if err := af.Validate(); err != nil {
		finish(2, err)
	}
	if err := validateShard(shard, *emitShard, *parallel, af.Replaying()); err != nil {
		finish(2, err)
	}
	opts.ArchiveDir = af.Archive
	if af.Replaying() {
		if err := replayArchives(context.Background(), af.Replay, opts.Workers, *parallel, af.From, af.To, shard, *emitShard, os.Stdout); err != nil {
			finish(1, err)
		}
		finish(0, nil)
		return
	}
	opts.EOS.Seed, opts.Tezos.Seed, opts.XRP.Seed, opts.Gov.Seed = *seed, *seed, *seed, *seed
	if *stress {
		// One shared fetch pool keeps the stress stage inside the same
		// total fetch-concurrency budget as the built-in stages.
		opts.Pool = collect.NewPool(opts.Workers)
		opts.ExtraStages = append(opts.ExtraStages,
			pipeline.EIDOSStressStage(pipeline.StageOptions{Scale: *stressScale, Seed: *seed}, opts))
	}

	res, err := pipeline.Run(context.Background(), opts)
	if err != nil {
		finish(1, err)
	}

	switch strings.ToLower(*figure) {
	case "all":
		fmt.Println(pipeline.FullReport(res))
	case "1":
		fmt.Println(pipeline.Figure1(res))
	case "2":
		fmt.Println(pipeline.Figure2(res))
	case "3":
		fmt.Println(pipeline.Figure3(res))
	case "4":
		fmt.Println(pipeline.Figure4(res))
	case "5":
		fmt.Println(pipeline.Figure5(res))
	case "6":
		fmt.Println(pipeline.Figure6(res))
	case "7":
		fmt.Println(pipeline.Figure7(res))
	case "8":
		fmt.Println(pipeline.Figure8(res))
	case "9":
		fmt.Println(pipeline.Figure9(res))
	case "11":
		fmt.Println(pipeline.Figure11(res))
	case "12":
		fmt.Println(pipeline.Figure12(res))
	case "tps":
		fmt.Println(pipeline.HeadlineTPS(res))
	case "cases":
		fmt.Println(pipeline.CaseStudies(res))
	case "endpoints":
		fmt.Println(pipeline.EndpointReport(res))
	case "stages":
		fmt.Println(pipeline.StageTimings(res))
	default:
		finish(2, fmt.Sprintf("unknown figure %q", *figure))
	}
	finish(0, nil)
}

// validateParallel rejects -parallel values that would silently degenerate:
// an explicit N ≤ 0 used to be accepted and quietly collapse the sweep to a
// single run, which reads as "my sweep converged" when no sweep ran at all.
// A sweep also only makes sense over -replay — it replays one archived
// crawl, it does not refetch.
func validateParallel(n int, set, replaying bool) error {
	if set && n <= 0 {
		return fmt.Errorf("-parallel %d is not a sweep: pass N >= 1 concurrent replay runs (or omit the flag for a plain replay)", n)
	}
	if n > 0 && !replaying {
		return fmt.Errorf("-parallel needs -replay: the sweep replays one archived crawl, it does not refetch")
	}
	return nil
}

// validateShard rejects -shard/-emit-shard combinations before any store
// round-trip: both only make sense over -replay, and a shard inside a
// -parallel sweep would emit ambiguous state (which sweep run's?).
func validateShard(shard cli.ShardSpec, emit string, parallel int, replaying bool) error {
	if !shard.Enabled() && emit == "" {
		return nil
	}
	if !replaying {
		return fmt.Errorf("-shard/-emit-shard need -replay: they slice and serialize an archived crawl")
	}
	if shard.Enabled() && parallel > 0 {
		return fmt.Errorf("-shard with -parallel: a sweep replays everything and a shard replays a slice — pass one or the other")
	}
	return cli.ValidateStore(emit)
}

// replayArchives regenerates figures offline from archived raw blocks. dir
// is either one chain's archive (it holds manifest.json directly) or a
// parent whose immediate subdirectories are archives, the layout cmd/crawl
// -archive and the pipeline's ArchiveDir produce. Every archive replays
// through core.IngestArchive: segment-granular fan-out, records decoded in
// place and folded into per-worker shards — the figures are byte-identical
// to the live crawl's because every aggregate is order-independent.
//
// With from > 0 only blocks in [from, to] replay: OpenRange consults the
// manifest's per-segment block-range index, so segments outside the slice
// are never fetched or verified. An archive whose blocks fall entirely
// outside the range is skipped like an empty one.
//
// With sweeps > 0 each archive additionally replays `sweeps` times
// concurrently, each run with a different ingest worker count, and a
// per-chain convergence band (min/median/max of every figure across the
// runs) is appended after all figure sections. A deterministic decoder
// must collapse every band to a point: the sweep is the self-test that no
// figure depends on scheduling, sharding or worker count.
// With shard set (i/n) each archive replays only the i-th contiguous slice
// of its covered range, and with emit non-empty the drained shard state of
// every replayed chain is serialized into that blob store for cmd/merge —
// the offline counterpart of cmd/crawl -shard/-emit-shard, useful to
// re-partition one big archived crawl across merge workers.
func replayArchives(ctx context.Context, dir string, workers, sweeps int, from, to int64, shard cli.ShardSpec, emit string, out io.Writer) error {
	dirs, err := archive.Discover(dir)
	if err != nil {
		return err
	}
	var bands []core.SummaryBand
	for _, adir := range dirs {
		var rd *archive.Reader
		var err error
		if from > 0 {
			rd, err = archive.OpenRange(adir, from, to)
		} else {
			rd, err = archive.Open(adir)
		}
		if err != nil {
			return err
		}
		// The summary anchors every chain's series at the paper's
		// observation window, exactly as cmd/crawl does live — the two
		// sides of the determinism diff must agree. Blocks before the
		// window (e.g. a pipeline governance archive, July 2019) clamp
		// into bucket 0, so such an archive replays correctly but its
		// bucket percentiles describe one big pre-window bucket.
		if rd.Blocks() == 0 {
			if from > 0 {
				fmt.Fprintf(os.Stderr, "replay %s: archive %s holds no blocks in [%d, %d]\n", rd.Chain(), adir, from, to)
			} else {
				fmt.Fprintf(os.Stderr, "replay %s: archive %s is empty\n", rd.Chain(), adir)
			}
			continue
		}
		// Fail fast on gaps: an interrupted crawl that was never resumed
		// left holes, and silently replaying around them would skew every
		// figure.
		if !rd.Covers(rd.From(), rd.To()) {
			return fmt.Errorf("archive %s is incomplete: %d blocks in [%d, %d] — resume the crawl that wrote it (same -archive and -checkpoint flags)",
				adir, rd.Blocks(), rd.From(), rd.To())
		}
		if shard.Enabled() || emit != "" {
			if err := replayShard(ctx, rd, adir, workers, shard, emit, out); err != nil {
				return err
			}
			continue
		}
		runs := sweeps
		if runs <= 0 {
			runs = 1
		}
		summaries, err := sweepArchive(ctx, rd, adir, runs, workers)
		if err != nil {
			return err
		}
		// Progress goes to stderr: stdout carries only the deterministic
		// figures sections, so it can be diffed against a live crawl's.
		fmt.Fprintf(os.Stderr, "replay %s: %d blocks from %s (%d segments, %d sweep run(s))\n",
			summaries[0].Chain, rd.Blocks(), adir, rd.Segments(), runs)
		// The first run's section is what a plain replay prints; the
		// band (when sweeping) asserts the other runs matched it.
		fmt.Fprint(out, summaries[0].Render())
		if sweeps > 0 {
			bands = append(bands, core.BandOf(summaries))
		}
	}
	// Bands land after every figures section so the determinism diff can
	// cut the stream at the first "=== " line.
	for _, b := range bands {
		fmt.Fprint(out, b.Render())
	}
	return nil
}

// replayShard is the distributed leg of a replay: cut this shard's slice
// out of the archive's covered range, replay only it (the segment-range
// index prunes everything else), print its figures, and optionally emit
// the drained state for cmd/merge. The covered range recorded on the
// emitted shard is the reader's actual range, so a complete set of i/n
// replays tiles the archive exactly and passes merge validation.
func replayShard(ctx context.Context, rd *archive.Reader, adir string, workers int, shard cli.ShardSpec, emit string, out io.Writer) error {
	if shard.Enabled() {
		lo, hi, err := shard.Cut(rd.From(), rd.To())
		if err != nil {
			return fmt.Errorf("archive %s: %w", adir, err)
		}
		if rd, err = archive.OpenRange(adir, lo, hi); err != nil {
			return err
		}
	}
	kit, err := core.NewStatsKit(rd.Chain(), chain.ObservationStart, 6*time.Hour)
	if err != nil {
		return fmt.Errorf("archive %s: %w", adir, err)
	}
	if _, err := core.IngestArchive(ctx, rd, kit.Decoder, core.IngestConfig{Workers: workers}); err != nil {
		return fmt.Errorf("replaying %s: %w", adir, err)
	}
	fmt.Fprintf(os.Stderr, "replay %s: %d blocks from %s ([%d, %d])\n",
		rd.Chain(), rd.Blocks(), adir, rd.From(), rd.To())
	fmt.Fprint(out, kit.Summarize().Render())
	if emit != "" {
		st := kit.State()
		st.SetCovered(core.BlockRange{From: rd.From(), To: rd.To()})
		key, err := core.EmitShard(ctx, emit, st)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "replay %s: emitted shard %s @ %s\n", rd.Chain(), key, emit)
	}
	return nil
}

// sweepArchive replays one opened archive `runs` times concurrently. Every
// run builds its own aggregator stack but shares the verified Reader (and
// its decompressed-segment cache), so N runs cost zero refetches and at
// most one decompression per segment per run. Worker counts vary per run —
// 1, 2, … up to the CPU count — so a converged band also witnesses
// worker-count invariance, not just repeatability.
func sweepArchive(ctx context.Context, rd *archive.Reader, adir string, runs, workers int) ([]core.ChainSummary, error) {
	maxWorkers := runtime.GOMAXPROCS(0)
	if workers > 0 {
		maxWorkers = workers
	}
	summaries := make([]core.ChainSummary, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kit, err := core.NewStatsKit(rd.Chain(), chain.ObservationStart, 6*time.Hour)
			if err != nil {
				errs[i] = fmt.Errorf("archive %s: %w", adir, err)
				return
			}
			icfg := core.IngestConfig{Workers: 1 + i%maxWorkers}
			if _, err := core.IngestArchive(ctx, rd, kit.Decoder, icfg); err != nil {
				errs[i] = fmt.Errorf("replaying %s (seed run %d): %w", adir, i, err)
				return
			}
			summaries[i] = kit.Summarize()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return summaries, nil
}
