// Command report runs the full reproduction pipeline — calibrated
// workloads, chain simulators, network crawl, measurement — and prints
// every table and figure from the paper's evaluation.
//
// Usage:
//
//	report [-eos-scale N] [-tezos-scale N] [-xrp-scale N] [-gov-scale N]
//	       [-seed N] [-workers N] [-figure name]
//
// Smaller scales simulate more traffic and converge closer to the paper's
// percentages; the defaults finish in a few seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collect"
	"repro/internal/pipeline"
)

func main() {
	opts := pipeline.DefaultOptions()
	flag.Int64Var(&opts.EOS.Scale, "eos-scale", opts.EOS.Scale, "EOS scale divisor (smaller = more traffic)")
	flag.Int64Var(&opts.Tezos.Scale, "tezos-scale", opts.Tezos.Scale, "Tezos scale divisor")
	flag.Int64Var(&opts.XRP.Scale, "xrp-scale", opts.XRP.Scale, "XRP scale divisor")
	flag.Int64Var(&opts.Gov.Scale, "gov-scale", opts.Gov.Scale, "governance replay scale divisor")
	seed := flag.Int64("seed", 1, "deterministic scenario seed (applied to every stage)")
	flag.IntVar(&opts.Workers, "workers", opts.Workers, "shared crawl worker pool size")
	flag.IntVar(&opts.StageWorkers, "stage-workers", opts.StageWorkers, "max concurrently running stages (0 = unbounded, 1 = sequential)")
	figure := flag.String("figure", "all", "figure to print: all, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, tps, cases, endpoints, stages")
	stress := flag.Bool("stress", false, "add the eidos-stress stage: the EOS workload at a hotter arrival rate, reported in the stage timings")
	stressScale := flag.Int64("stress-scale", 0, "eidos-stress scale divisor (0 = quarter of the EOS default)")
	flag.Parse()
	opts.EOS.Seed, opts.Tezos.Seed, opts.XRP.Seed, opts.Gov.Seed = *seed, *seed, *seed, *seed
	if *stress {
		// One shared fetch pool keeps the stress stage inside the same
		// total fetch-concurrency budget as the built-in stages.
		opts.Pool = collect.NewPool(opts.Workers)
		opts.ExtraStages = append(opts.ExtraStages,
			pipeline.EIDOSStressStage(pipeline.StageOptions{Scale: *stressScale, Seed: *seed}, opts))
	}

	res, err := pipeline.Run(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	switch strings.ToLower(*figure) {
	case "all":
		fmt.Println(pipeline.FullReport(res))
	case "1":
		fmt.Println(pipeline.Figure1(res))
	case "2":
		fmt.Println(pipeline.Figure2(res))
	case "3":
		fmt.Println(pipeline.Figure3(res))
	case "4":
		fmt.Println(pipeline.Figure4(res))
	case "5":
		fmt.Println(pipeline.Figure5(res))
	case "6":
		fmt.Println(pipeline.Figure6(res))
	case "7":
		fmt.Println(pipeline.Figure7(res))
	case "8":
		fmt.Println(pipeline.Figure8(res))
	case "9":
		fmt.Println(pipeline.Figure9(res))
	case "11":
		fmt.Println(pipeline.Figure11(res))
	case "12":
		fmt.Println(pipeline.Figure12(res))
	case "tps":
		fmt.Println(pipeline.HeadlineTPS(res))
	case "cases":
		fmt.Println(pipeline.CaseStudies(res))
	case "endpoints":
		fmt.Println(pipeline.EndpointReport(res))
	case "stages":
		fmt.Println(pipeline.StageTimings(res))
	default:
		fmt.Fprintf(os.Stderr, "report: unknown figure %q\n", *figure)
		os.Exit(2)
	}
}
