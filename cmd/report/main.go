// Command report runs the full reproduction pipeline — calibrated
// workloads, chain simulators, network crawl, measurement — and prints
// every table and figure from the paper's evaluation.
//
// Usage:
//
//	report [-eos-scale N] [-tezos-scale N] [-xrp-scale N] [-gov-scale N]
//	       [-seed N] [-workers N] [-figure name]
//
// Smaller scales simulate more traffic and converge closer to the paper's
// percentages; the defaults finish in a few seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/pipeline"
)

func main() {
	opts := pipeline.DefaultOptions()
	flag.Int64Var(&opts.EOSScale, "eos-scale", opts.EOSScale, "EOS scale divisor (smaller = more traffic)")
	flag.Int64Var(&opts.TezosScale, "tezos-scale", opts.TezosScale, "Tezos scale divisor")
	flag.Int64Var(&opts.XRPScale, "xrp-scale", opts.XRPScale, "XRP scale divisor")
	flag.Int64Var(&opts.GovScale, "gov-scale", opts.GovScale, "governance replay scale divisor")
	flag.Int64Var(&opts.Seed, "seed", opts.Seed, "deterministic scenario seed")
	flag.IntVar(&opts.Workers, "workers", opts.Workers, "crawl workers per chain")
	figure := flag.String("figure", "all", "figure to print: all, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, tps, cases, endpoints")
	flag.Parse()

	res, err := pipeline.Run(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	switch strings.ToLower(*figure) {
	case "all":
		fmt.Println(pipeline.FullReport(res))
	case "1":
		fmt.Println(pipeline.Figure1(res))
	case "2":
		fmt.Println(pipeline.Figure2(res))
	case "3":
		fmt.Println(pipeline.Figure3(res))
	case "4":
		fmt.Println(pipeline.Figure4(res))
	case "5":
		fmt.Println(pipeline.Figure5(res))
	case "6":
		fmt.Println(pipeline.Figure6(res))
	case "7":
		fmt.Println(pipeline.Figure7(res))
	case "8":
		fmt.Println(pipeline.Figure8(res))
	case "9":
		fmt.Println(pipeline.Figure9(res))
	case "11":
		fmt.Println(pipeline.Figure11(res))
	case "12":
		fmt.Println(pipeline.Figure12(res))
	case "tps":
		fmt.Println(pipeline.HeadlineTPS(res))
	case "cases":
		fmt.Println(pipeline.CaseStudies(res))
	case "endpoints":
		fmt.Println(pipeline.EndpointReport(res))
	default:
		fmt.Fprintf(os.Stderr, "report: unknown figure %q\n", *figure)
		os.Exit(2)
	}
}
