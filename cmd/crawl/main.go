// Command crawl collects block history from a chain endpoint (such as one
// served by cmd/chainsim) in reverse chronological order, reporting the
// dataset characterization the paper's Figure 2 tabulates: block count,
// transaction count and gzip-compressed size.
//
// Blocks flow through the bounded stream API (collect.Stream) into a
// decode/ingest pool (core.IngestStream), so fetching and measurement are
// decoupled the way the paper's long-running crawl machines were. With
// -checkpoint the crawl is resumable: SIGINT/SIGTERM cancels it cleanly,
// the partial summary and contiguous-frontier checkpoint are written, and
// the next invocation with the same flag skips every block already
// delivered.
//
// With -archive the crawl is durable as well: every raw block is teed
// into a segmented archive (see internal/archive) while it is ingested,
// and cmd/report -replay can later regenerate the figures from that
// location with zero network calls. The location is a blob store: a plain
// directory path, file://PATH, mem://NAME, s3://BUCKET/PREFIX?endpoint=URL,
// or null:// (see internal/blobstore). A completed crawl prints a
// deterministic "figures" section that a replay over the same archive
// reproduces byte-for-byte — on any backend — which the CI archive job
// diffs.
//
// With -shard i/n the crawl becomes one worker of a distributed crawl: it
// pins the block range (resolving head once if -to is 0), fetches only its
// i-th contiguous slice, and with -emit-shard serializes its drained
// aggregate into a blob store for cmd/merge to validate and fold with the
// other shards — the merged figures are byte-identical to a single-process
// crawl, which the CI distributed job diffs.
//
// With -checkpoint-every N the shard crawl becomes crash-recoverable: the
// slice is crawled in chunks of N blocks and after each chunk the FULL
// aggregate is persisted to the -emit-shard store (internal/coord), so a
// worker killed at any instant resumes from the last chunk boundary and
// still emits a complete shard — the resumed blocks live in the decoded
// checkpoint, not a skipped-frontier file, so nothing is silently short.
// cmd/coordinate drives fleets of such workers, handing each a -fence
// token (its slice lease's attempt count) that is stamped into the
// emitted shard; a worker whose lease was reclaimed mid-crawl emits a
// stale fence that validation and merge refuse, so it cannot clobber the
// reclaimer's newer shard.
//
// Usage:
//
//	crawl -chain eos   -endpoint http://127.0.0.1:PORT [-checkpoint FILE] [-archive STORE]
//	crawl -chain tezos -endpoint http://127.0.0.1:PORT [-checkpoint FILE] [-archive STORE]
//	crawl -chain xrp   -endpoint ws://127.0.0.1:PORT   [-checkpoint FILE] [-archive STORE]
//	crawl -chain eos   -endpoint URL -shard 2/3 -emit-shard STORE
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/blobstore"
	"repro/internal/chain"
	"repro/internal/cli"
	"repro/internal/collect"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/prof"
)

type crawlOpts struct {
	cli.ArchiveFlags
	chain           string
	endpoint        string
	checkpoint      string
	checkpointEvery int64
	workers         int
	ingest          int
	batch           int
	buffer          int
	shard           cli.ShardSpec
	emitShard       string
	fence           uint64
}

func main() {
	var o crawlOpts
	flag.StringVar(&o.chain, "chain", "", "eos, tezos or xrp")
	flag.StringVar(&o.endpoint, "endpoint", "", "endpoint URL")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file: resume from it if present, write it on exit")
	flag.Int64Var(&o.checkpointEvery, "checkpoint-every", 0, "blocks per crash-recoverable chunk: with -emit-shard, persist the full aggregate to the shard store after each chunk and resume from it after a kill (incompatible with -checkpoint and -archive)")
	o.ArchiveFlags.Register(flag.CommandLine, cli.ModeCrawl)
	flag.IntVar(&o.workers, "workers", 4, "concurrent fetchers (xrp uses 1)")
	flag.IntVar(&o.ingest, "ingest", 2, "decode/ingest workers")
	flag.IntVar(&o.batch, "batch", 16, "blocks per aggregator lock acquisition")
	flag.IntVar(&o.buffer, "buffer", 64, "stream buffer: max fetched-but-unprocessed blocks")
	flag.Var(&o.shard, "shard", "crawl shard i of n ('i/n'): fetch only the i-th contiguous slice of the block range (distributed crawl; combine with -emit-shard and cmd/merge)")
	flag.StringVar(&o.emitShard, "emit-shard", "", "after a clean crawl, serialize the drained shard state into this blob-store location for cmd/merge")
	flag.Uint64Var(&o.fence, "fence", 0, "lease fence token to stamp into the emitted shard (set by cmd/coordinate; a stale fence is refused at validation and merge)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof evidence for perf work)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if o.chain == "" || o.endpoint == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := o.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(2)
	}
	if err := cli.ValidateStore(o.emitShard); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(2)
	}

	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancels the crawl context; the stream drains, the
	// partial summary prints, and the checkpoint (if requested) is saved.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = run(ctx, o, os.Stdout)
	// A profile-write failure surfaces even when the crawl itself failed:
	// the failing run is exactly the one whose profile evidence matters.
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, "crawl:", perr)
		if err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

// run executes one crawl. It is the whole command behind flag parsing and
// signal wiring so tests can drive interruption and resume deterministically.
func run(ctx context.Context, o crawlOpts, out io.Writer) error {
	kit, err := core.NewStatsKit(o.chain, chain.ObservationStart, 6*time.Hour)
	if err != nil {
		return fmt.Errorf("unknown chain %q", o.chain)
	}
	var fetcher collect.BlockFetcher
	switch o.chain {
	case "eos":
		fetcher = collect.NewEOSClient(o.endpoint)
	case "tezos":
		fetcher = collect.NewTezosClient(o.endpoint)
	case "xrp":
		client := collect.NewXRPClient(o.endpoint)
		defer client.Close()
		fetcher = client
		o.workers = 1 // the WebSocket protocol is sequential per connection
	}

	from, to := o.From, o.To
	if o.shard.Enabled() {
		// A shard crawls a fixed slice, so the range must be concrete
		// before the cut: resolve head once here rather than letting each
		// shard race the growing chain to its own notion of "head" —
		// n processes started with the same -from/-to always tile the
		// same span only if that span is pinned.
		if to == 0 {
			if to, err = fetcher.Head(ctx); err != nil {
				return fmt.Errorf("resolving head for -shard %s: %w", o.shard.String(), err)
			}
		}
		fullFrom, fullTo := from, to
		if from, to, err = o.shard.Cut(from, to); err != nil {
			return err
		}
		fmt.Fprintf(out, "shard:       %s of [%d, %d] -> [%d, %d]\n", o.shard.String(), fullFrom, fullTo, from, to)
	}

	if o.checkpointEvery > 0 {
		// Crash-recoverable mode: the crawl runs in chunks and persists the
		// FULL aggregate to the shard store after each one, so a killed
		// worker resumes into a shard-emittable state (unlike -checkpoint,
		// whose frontier file records which blocks are done but not their
		// contribution to this process's aggregate).
		if o.emitShard == "" {
			return fmt.Errorf("-checkpoint-every requires -emit-shard: the crash-recoverable checkpoint lives in the shard store")
		}
		if o.checkpoint != "" {
			return fmt.Errorf("-checkpoint-every is incompatible with -checkpoint: the blob-store checkpoint already carries the full aggregate, pick one")
		}
		if o.Archive != "" {
			return fmt.Errorf("-checkpoint-every is incompatible with -archive: a resumed chunk would re-tee blocks the archive already holds")
		}
		if to == 0 {
			if to, err = fetcher.Head(ctx); err != nil {
				return fmt.Errorf("resolving head for -checkpoint-every: %w", err)
			}
		}
		store, err := blobstore.Resolve(o.emitShard)
		if err != nil {
			return err
		}
		outc, err := coord.RunShardCrawl(ctx, coord.CrawlerConfig{
			Kit: kit, Fetcher: fetcher, From: from, To: to,
			Store: store, CheckpointEvery: o.checkpointEvery,
			Workers: o.workers, Ingest: o.ingest, Batch: o.batch, Buffer: o.buffer,
			Fence: o.fence,
			Log:   out,
		})
		fmt.Fprintf(out, "chain:       %s\n", o.chain)
		fmt.Fprintf(out, "blocks:      %d (retries %d)\n", outc.Blocks, outc.Retries)
		if outc.Resumed.Known() {
			fmt.Fprintf(out, "resumed:     %s arrived via the blob-store checkpoint, not refetched\n", outc.Resumed)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(out, "interrupted — rerun with the same flags to resume from the last checkpoint")
			}
			return err
		}
		fmt.Fprint(out, kit.Summarize().Render())
		return nil
	}

	cfg := collect.CrawlConfig{
		From: from, To: to,
		Workers: o.workers, Buffer: o.buffer,
	}
	var sink *archive.Writer
	if o.Archive != "" {
		sink, err = archive.NewWriter(archive.WriterConfig{Dir: o.Archive, Chain: o.chain})
		if err != nil {
			return err
		}
		cfg.Tee = sink.Append
	}
	if o.checkpoint != "" {
		cp, err := collect.LoadCheckpoint(o.checkpoint)
		switch {
		case err == nil:
			cfg.Resume = &cp
			fmt.Fprintf(out, "resuming:    range [%d, %d], %d blocks remaining (checkpoint %s)\n",
				cp.From, cp.To, cp.Remaining(), o.checkpoint)
		case os.IsNotExist(err):
			// Fresh crawl; the checkpoint is written on exit.
		default:
			return err
		}
	}

	res, handle, err := core.IngestCrawl(ctx, fetcher, cfg, kit.Decoder, core.IngestConfig{Workers: o.ingest, Batch: o.batch})
	// The stream is fully drained, so no Append can still be in flight;
	// finalize the archive before reporting anything. Interrupted and
	// failed crawls finalize too — everything teed so far is intact and a
	// rerun with the same -archive extends it. A finalization failure
	// joins any crawl error (both must surface) and, like a tee error,
	// vetoes the checkpoint below: blocks in the segment that failed to
	// finalize were delivered and marked done, and checkpointing them
	// would leave the archive short of them forever.
	var archiveErr error
	if sink != nil {
		if cerr := sink.Close(); cerr != nil {
			archiveErr = fmt.Errorf("finalizing archive: %w", cerr)
			err = errors.Join(err, archiveErr)
		}
	}
	interrupted := errors.Is(err, context.Canceled) && !errors.Is(err, core.ErrIngest) && archiveErr == nil
	fmt.Fprintf(out, "chain:       %s\n", o.chain)
	fmt.Fprintf(out, "blocks:      %d (failed %d, retries %d)\n", res.Blocks, res.Failed, res.Retries)
	fmt.Fprintf(out, "skipped:     %d (already in checkpoint)\n", res.Skipped)
	fmt.Fprintf(out, "txs/ops:     %d\n", kit.Txs())
	fmt.Fprintf(out, "raw bytes:   %d\n", res.RawBytes)
	if res.RawBytes > 0 {
		fmt.Fprintf(out, "gzip bytes:  %d (%.1f%% of raw)\n", res.GzipBytes, 100*float64(res.GzipBytes)/float64(res.RawBytes))
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		fmt.Fprintf(out, "elapsed:     %v (%.0f blocks/s)\n", res.Elapsed, float64(res.Blocks)/secs)
	}
	if sink != nil {
		fmt.Fprintf(out, "archive:     %s (%d blocks teed, %d segments)\n", o.Archive, sink.Blocks(), sink.Segments())
	}

	// Persist progress — but never over an ingest error (blocks the stream
	// delivered but the pool failed to fold in would be recorded as done
	// and skipped forever on resume), never over a tee error (delivered
	// blocks may share a discarded archive segment with the failed write,
	// so a resume would skip blocks the archive never kept), and never
	// before the crawl resolved its range (cp.To == 0: an all-zero
	// checkpoint would fail validation on every later run and brick the
	// file).
	saved := false
	if o.checkpoint != "" && !errors.Is(err, core.ErrIngest) && !errors.Is(err, collect.ErrTee) && archiveErr == nil {
		if cp := handle.Checkpoint(); cp.To > 0 {
			if serr := cp.Save(o.checkpoint); serr != nil {
				return fmt.Errorf("saving checkpoint: %w", serr)
			}
			saved = true
			fmt.Fprintf(out, "checkpoint:  %s (frontier %d, %d blocks remaining)\n",
				o.checkpoint, cp.Frontier, cp.Remaining())
		}
	}

	if interrupted {
		if !saved {
			return fmt.Errorf("interrupted before any progress could be checkpointed: %w", err)
		}
		fmt.Fprintln(out, "interrupted — rerun with the same -checkpoint to resume")
		return nil
	}
	if err == nil && o.emitShard != "" {
		// Serialize the drained shard state for cmd/merge. A resumed run
		// must refuse: blocks the checkpoint skipped were never folded
		// into THIS process's aggregate, so the emitted shard would claim
		// a range it does not fully cover and the merged figures would be
		// silently short.
		if res.Skipped > 0 {
			return fmt.Errorf("refusing to emit a shard: %d blocks arrived via the checkpoint file, not this run's aggregate — use -checkpoint-every instead, whose blob-store checkpoints carry the full aggregate and resume straight into an emittable shard", res.Skipped)
		}
		cp := handle.Checkpoint()
		st := kit.State()
		st.SetCovered(core.BlockRange{From: cp.From, To: cp.To})
		key, serr := core.EmitShardFenced(ctx, o.emitShard, st, o.fence)
		if serr != nil {
			return serr
		}
		fmt.Fprintf(out, "emitted:     %s @ %s\n", key, o.emitShard)
	}
	if err == nil {
		// The deterministic figures section: derived only from the set of
		// blocks this run ingested, so an offline replay of the same
		// archive (cmd/report -replay) reproduces it byte-for-byte.
		fmt.Fprint(out, kit.Summarize().Render())
	}
	return err
}
