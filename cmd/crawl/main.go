// Command crawl collects block history from a chain endpoint (such as one
// served by cmd/chainsim) in reverse chronological order, reporting the
// dataset characterization the paper's Figure 2 tabulates: block count,
// transaction count and gzip-compressed size.
//
// Blocks flow through the bounded stream API (collect.Stream) into a
// decode/ingest pool (core.IngestStream), so fetching and measurement are
// decoupled the way the paper's long-running crawl machines were. With
// -checkpoint the crawl is resumable: SIGINT/SIGTERM cancels it cleanly,
// the partial summary and contiguous-frontier checkpoint are written, and
// the next invocation with the same flag skips every block already
// delivered.
//
// Usage:
//
//	crawl -chain eos   -endpoint http://127.0.0.1:PORT [-checkpoint FILE]
//	crawl -chain tezos -endpoint http://127.0.0.1:PORT [-checkpoint FILE]
//	crawl -chain xrp   -endpoint ws://127.0.0.1:PORT   [-checkpoint FILE]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/core"
)

type crawlOpts struct {
	chain      string
	endpoint   string
	checkpoint string
	workers    int
	ingest     int
	batch      int
	buffer     int
	from, to   int64
}

func main() {
	var o crawlOpts
	flag.StringVar(&o.chain, "chain", "", "eos, tezos or xrp")
	flag.StringVar(&o.endpoint, "endpoint", "", "endpoint URL")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file: resume from it if present, write it on exit")
	flag.IntVar(&o.workers, "workers", 4, "concurrent fetchers (xrp uses 1)")
	flag.IntVar(&o.ingest, "ingest", 2, "decode/ingest workers")
	flag.IntVar(&o.batch, "batch", 16, "blocks per aggregator lock acquisition")
	flag.IntVar(&o.buffer, "buffer", 64, "stream buffer: max fetched-but-unprocessed blocks")
	flag.Int64Var(&o.from, "from", 1, "first block")
	flag.Int64Var(&o.to, "to", 0, "last block (0 = head)")
	flag.Parse()
	if o.chain == "" || o.endpoint == "" {
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancels the crawl context; the stream drains, the
	// partial summary prints, and the checkpoint (if requested) is saved.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

// run executes one crawl. It is the whole command behind flag parsing and
// signal wiring so tests can drive interruption and resume deterministically.
func run(ctx context.Context, o crawlOpts, out io.Writer) error {
	var fetcher collect.BlockFetcher
	var dec core.Decoder
	var txs func() int64
	switch o.chain {
	case "eos":
		fetcher = collect.NewEOSClient(o.endpoint)
		agg := core.NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
		dec = core.EOSDecoder{Agg: agg}
		txs = func() int64 { return agg.Transactions }
	case "tezos":
		fetcher = collect.NewTezosClient(o.endpoint)
		agg := core.NewTezosAggregator(chain.ObservationStart, 6*time.Hour)
		dec = core.TezosDecoder{Agg: agg}
		txs = func() int64 { return agg.Operations }
	case "xrp":
		client := collect.NewXRPClient(o.endpoint)
		defer client.Close()
		fetcher = client
		o.workers = 1 // the WebSocket protocol is sequential per connection
		agg := core.NewXRPAggregator(chain.ObservationStart, 6*time.Hour)
		dec = core.XRPDecoder{Agg: agg}
		txs = func() int64 { return agg.Transactions }
	default:
		return fmt.Errorf("unknown chain %q", o.chain)
	}

	cfg := collect.CrawlConfig{
		From: o.from, To: o.to,
		Workers: o.workers, Buffer: o.buffer,
	}
	if o.checkpoint != "" {
		cp, err := collect.LoadCheckpoint(o.checkpoint)
		switch {
		case err == nil:
			cfg.Resume = &cp
			fmt.Fprintf(out, "resuming:    range [%d, %d], %d blocks remaining (checkpoint %s)\n",
				cp.From, cp.To, cp.Remaining(), o.checkpoint)
		case os.IsNotExist(err):
			// Fresh crawl; the checkpoint is written on exit.
		default:
			return err
		}
	}

	res, handle, err := core.IngestCrawl(ctx, fetcher, cfg, dec, core.IngestConfig{Workers: o.ingest, Batch: o.batch})
	interrupted := errors.Is(err, context.Canceled) && !errors.Is(err, core.ErrIngest)
	fmt.Fprintf(out, "chain:       %s\n", o.chain)
	fmt.Fprintf(out, "blocks:      %d (failed %d, retries %d)\n", res.Blocks, res.Failed, res.Retries)
	fmt.Fprintf(out, "skipped:     %d (already in checkpoint)\n", res.Skipped)
	fmt.Fprintf(out, "txs/ops:     %d\n", txs())
	fmt.Fprintf(out, "raw bytes:   %d\n", res.RawBytes)
	if res.RawBytes > 0 {
		fmt.Fprintf(out, "gzip bytes:  %d (%.1f%% of raw)\n", res.GzipBytes, 100*float64(res.GzipBytes)/float64(res.RawBytes))
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		fmt.Fprintf(out, "elapsed:     %v (%.0f blocks/s)\n", res.Elapsed, float64(res.Blocks)/secs)
	}

	// Persist progress — but never over an ingest error (blocks the stream
	// delivered but the pool failed to fold in would be recorded as done
	// and skipped forever on resume), and never before the crawl resolved
	// its range (cp.To == 0: an all-zero checkpoint would fail validation
	// on every later run and brick the file).
	saved := false
	if o.checkpoint != "" && !errors.Is(err, core.ErrIngest) {
		if cp := handle.Checkpoint(); cp.To > 0 {
			if serr := cp.Save(o.checkpoint); serr != nil {
				return fmt.Errorf("saving checkpoint: %w", serr)
			}
			saved = true
			fmt.Fprintf(out, "checkpoint:  %s (frontier %d, %d blocks remaining)\n",
				o.checkpoint, cp.Frontier, cp.Remaining())
		}
	}

	if interrupted {
		if !saved {
			return fmt.Errorf("interrupted before any progress could be checkpointed: %w", err)
		}
		fmt.Fprintln(out, "interrupted — rerun with the same -checkpoint to resume")
		return nil
	}
	return err
}
