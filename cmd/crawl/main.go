// Command crawl collects block history from a chain endpoint (such as one
// served by cmd/chainsim) in reverse chronological order, reporting the
// dataset characterization the paper's Figure 2 tabulates: block count,
// transaction count and gzip-compressed size.
//
// Usage:
//
//	crawl -chain eos   -endpoint http://127.0.0.1:PORT
//	crawl -chain tezos -endpoint http://127.0.0.1:PORT
//	crawl -chain xrp   -endpoint ws://127.0.0.1:PORT
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/collect"
)

func main() {
	chainName := flag.String("chain", "", "eos, tezos or xrp")
	endpoint := flag.String("endpoint", "", "endpoint URL")
	workers := flag.Int("workers", 4, "concurrent fetchers (xrp uses 1)")
	from := flag.Int64("from", 1, "first block")
	to := flag.Int64("to", 0, "last block (0 = head)")
	flag.Parse()
	if *chainName == "" || *endpoint == "" {
		flag.Usage()
		os.Exit(2)
	}

	var fetcher collect.BlockFetcher
	var txs int64
	var sink collect.Sink
	switch *chainName {
	case "eos":
		fetcher = collect.NewEOSClient(*endpoint)
		sink = func(num int64, raw []byte) error {
			blk, err := collect.DecodeEOSBlock(raw)
			if err != nil {
				return err
			}
			atomic.AddInt64(&txs, int64(len(blk.Transactions)))
			return nil
		}
	case "tezos":
		fetcher = collect.NewTezosClient(*endpoint)
		sink = func(num int64, raw []byte) error {
			blk, err := collect.DecodeTezosBlock(raw)
			if err != nil {
				return err
			}
			atomic.AddInt64(&txs, int64(len(blk.Operations)))
			return nil
		}
	case "xrp":
		client := collect.NewXRPClient(*endpoint)
		defer client.Close()
		fetcher = client
		*workers = 1
		sink = func(num int64, raw []byte) error {
			led, err := collect.DecodeXRPLedger(raw)
			if err != nil {
				return err
			}
			atomic.AddInt64(&txs, int64(len(led.Transactions)))
			return nil
		}
	default:
		fmt.Fprintf(os.Stderr, "crawl: unknown chain %q\n", *chainName)
		os.Exit(2)
	}

	res, err := collect.Crawl(context.Background(), fetcher, collect.CrawlConfig{
		From: *from, To: *to, Workers: *workers,
	}, sink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	fmt.Printf("chain:       %s\n", *chainName)
	fmt.Printf("blocks:      %d (failed %d, retries %d)\n", res.Blocks, res.Failed, res.Retries)
	fmt.Printf("txs/ops:     %d\n", txs)
	fmt.Printf("raw bytes:   %d\n", res.RawBytes)
	fmt.Printf("gzip bytes:  %d (%.1f%% of raw)\n", res.GzipBytes, 100*float64(res.GzipBytes)/float64(res.RawBytes))
	fmt.Printf("elapsed:     %v (%.0f blocks/s)\n", res.Elapsed, float64(res.Blocks)/res.Elapsed.Seconds())
}
