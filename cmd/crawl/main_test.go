package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/blobstore"
	"repro/internal/blobstore/s3stub"
	"repro/internal/chain"
	"repro/internal/cli"
	"repro/internal/collect"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/eos"
	"repro/internal/rpcserve"
)

// countingEOSServer serves an EOS chain and records every get_block number
// handed out, cancelling interrupt after the limit-th block — standing in
// for a SIGINT landing mid-crawl.
type countingEOSServer struct {
	srv       *httptest.Server
	mu        sync.Mutex
	fetched   map[int64]int
	served    int
	limit     int
	interrupt context.CancelFunc
}

func newCountingEOSServer(t *testing.T, nBlocks int) *countingEOSServer {
	t.Helper()
	c := eos.New(eos.DefaultConfig(1000))
	alice, bob := eos.MustName("alice"), eos.MustName("bob")
	for _, n := range []eos.Name{alice, bob} {
		if err := c.CreateAccount(n, eos.SystemAccount); err != nil {
			t.Fatal(err)
		}
		if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, n, chain.EOSAsset(1_000_0000)); err != nil {
			t.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 100_0000, 100_0000)
	}
	for i := 0; i < nBlocks; i++ {
		c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, alice, map[string]string{
			"from": "alice", "to": "bob", "quantity": "0.0001 EOS",
		}))
		c.ProduceBlock()
	}

	s := &countingEOSServer{fetched: make(map[int64]int)}
	inner := rpcserve.NewEOSServer(c)
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/get_block") {
			body, _ := io.ReadAll(r.Body)
			var req struct {
				Num json.Number `json:"block_num_or_id"`
			}
			json.Unmarshal(body, &req)
			num, _ := req.Num.Int64()
			s.mu.Lock()
			s.fetched[num]++
			s.served++
			if s.limit > 0 && s.served == s.limit && s.interrupt != nil {
				s.interrupt()
			}
			s.mu.Unlock()
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *countingEOSServer) reset() {
	s.mu.Lock()
	s.fetched = make(map[int64]int)
	s.served = 0
	s.limit = 0
	s.interrupt = nil
	s.mu.Unlock()
}

func (s *countingEOSServer) fetchedNums() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	nums := make([]int64, 0, len(s.fetched))
	for n := range s.fetched {
		nums = append(nums, n)
	}
	return nums
}

// TestCrawlInterruptResume is the command-level acceptance path: a crawl
// killed mid-flight writes its checkpoint, prints a partial summary, and
// the rerun skips every checkpointed block — the server never sees a
// request for a block the first run already delivered.
func TestCrawlInterruptResume(t *testing.T) {
	const total = 40
	s := newCountingEOSServer(t, total)
	ckpt := filepath.Join(t.TempDir(), "eos.ckpt")
	opts := crawlOpts{
		ArchiveFlags: cli.ArchiveFlags{From: 1},
		chain:        "eos", endpoint: s.srv.URL, checkpoint: ckpt,
		workers: 2, ingest: 2, batch: 4, buffer: 8,
	}

	// First run: the 15th served block triggers cancellation, as SIGINT
	// does through signal.NotifyContext in main.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.mu.Lock()
	s.limit, s.interrupt = 15, cancel
	s.mu.Unlock()
	var out1 bytes.Buffer
	if err := run(ctx, opts, &out1); err != nil {
		t.Fatalf("interrupted run returned error: %v\n%s", err, out1.String())
	}
	if !strings.Contains(out1.String(), "interrupted") {
		t.Fatalf("interrupted run printed no partial summary:\n%s", out1.String())
	}
	if !strings.Contains(out1.String(), "checkpoint:") {
		t.Fatalf("interrupted run saved no checkpoint:\n%s", out1.String())
	}

	cp, err := collect.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var done []int64
	for n := int64(1); n <= total; n++ {
		if cp.Done(n) {
			done = append(done, n)
		}
	}
	if len(done) == 0 {
		t.Fatal("checkpoint records nothing done after 15 served blocks")
	}
	if len(done) == total {
		t.Fatal("interrupted crawl completed everything — interruption never landed")
	}

	// Second run resumes to completion.
	s.reset()
	var out2 bytes.Buffer
	if err := run(context.Background(), opts, &out2); err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, out2.String())
	}
	for _, num := range s.fetchedNums() {
		if cp.Done(num) {
			t.Fatalf("resumed run refetched block %d, which the checkpoint records as done", num)
		}
	}
	if want := len(done); !strings.Contains(out2.String(), fmt.Sprintf("skipped:     %d", want)) {
		t.Fatalf("resumed run should report %d skipped blocks:\n%s", want, out2.String())
	}

	// The final checkpoint leaves nothing to do: a third run fetches zero.
	s.reset()
	var out3 bytes.Buffer
	if err := run(context.Background(), opts, &out3); err != nil {
		t.Fatal(err)
	}
	if nums := s.fetchedNums(); len(nums) != 0 {
		t.Fatalf("third run refetched %v after a complete checkpoint", nums)
	}
}

// TestCrawlInterruptWithoutCheckpointFails: with no -checkpoint there is
// nothing to resume from, so an interrupted run must report the lost
// progress as an error instead of exiting 0 with a resume hint.
func TestCrawlInterruptWithoutCheckpointFails(t *testing.T) {
	s := newCountingEOSServer(t, 40)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.mu.Lock()
	s.limit, s.interrupt = 10, cancel
	s.mu.Unlock()
	var out bytes.Buffer
	err := run(ctx, crawlOpts{ArchiveFlags: cli.ArchiveFlags{From: 1}, chain: "eos", endpoint: s.srv.URL, workers: 2, ingest: 1, batch: 4, buffer: 8}, &out)
	if err == nil {
		t.Fatalf("interrupted checkpoint-less run exited clean:\n%s", out.String())
	}
	if strings.Contains(out.String(), "rerun with the same -checkpoint") {
		t.Fatalf("checkpoint-less run suggests resuming from a checkpoint that was never written:\n%s", out.String())
	}
}

// TestCrawlFailedBeforeRangeWritesNoCheckpoint: a run that dies before the
// crawl range resolves (dead endpoint, or SIGINT beating head resolution)
// must not write the all-zero checkpoint that would fail validation and
// brick every later run against the same file.
func TestCrawlFailedBeforeRangeWritesNoCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "eos.ckpt")
	opts := crawlOpts{
		ArchiveFlags: cli.ArchiveFlags{From: 1},
		chain:        "eos", endpoint: "http://127.0.0.1:1", checkpoint: ckpt,
		workers: 1, ingest: 1, batch: 4, buffer: 8,
	}
	if err := run(context.Background(), opts, io.Discard); err == nil {
		t.Fatal("crawl against a dead endpoint succeeded")
	}
	if _, err := collect.LoadCheckpoint(ckpt); !os.IsNotExist(err) {
		t.Fatalf("dead-endpoint run left a checkpoint behind (load err: %v)", err)
	}

	// The same checkpoint path must still work for a later healthy run.
	s := newCountingEOSServer(t, 10)
	opts.endpoint = s.srv.URL
	var out bytes.Buffer
	if err := run(context.Background(), opts, &out); err != nil {
		t.Fatalf("healthy run after failed run: %v\n%s", err, out.String())
	}
	if cp, err := collect.LoadCheckpoint(ckpt); err != nil || cp.Remaining() != 0 {
		t.Fatalf("healthy run checkpoint: %+v, %v", cp, err)
	}
}

// TestCrawlArchiveReplayDeterminism: a crawl with -archive leaves a
// replayable archive whose offline replay renders the exact figures
// section the live crawl printed — the property the CI archive job diffs
// end to end with cmd/report -replay.
func TestCrawlArchiveReplayDeterminism(t *testing.T) {
	const total = 30
	s := newCountingEOSServer(t, total)
	arch := filepath.Join(t.TempDir(), "eos")
	var out bytes.Buffer
	err := run(context.Background(), crawlOpts{
		ArchiveFlags: cli.ArchiveFlags{Archive: arch, From: 1},
		chain:        "eos", endpoint: s.srv.URL,
		workers: 2, ingest: 2, batch: 4, buffer: 8,
	}, &out)
	if err != nil {
		t.Fatalf("archived crawl failed: %v\n%s", err, out.String())
	}
	idx := strings.Index(out.String(), "--- eos figures ---")
	if idx < 0 {
		t.Fatalf("live crawl printed no figures section:\n%s", out.String())
	}
	liveFigures := out.String()[idx:]

	// Replay from disk only: the server is never touched again.
	rd, err := archive.Open(arch)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Covers(1, total) {
		t.Fatalf("archive covers [%d, %d] of %d blocks", rd.From(), rd.To(), rd.Blocks())
	}
	s.reset()
	kit, err := core.NewStatsKit("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.IngestCrawl(context.Background(), rd, collect.CrawlConfig{
		From: 1, To: total, Workers: 2,
	}, kit.Decoder, core.IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	if replayFigures := kit.Summarize().Render(); replayFigures != liveFigures {
		t.Fatalf("replayed figures differ from live crawl:\n--- live ---\n%s\n--- replay ---\n%s", liveFigures, replayFigures)
	}
	if nums := s.fetchedNums(); len(nums) != 0 {
		t.Fatalf("replay hit the network for blocks %v", nums)
	}
}

// TestCrawlArchiveCrossBackendDeterminism: the same crawl archived to a
// bare directory path, a mem:// store and an S3-compatible stub produces
// byte-identical live figures, and each archive replays to those same
// bytes — the storage backend is invisible in every figure.
func TestCrawlArchiveCrossBackendDeterminism(t *testing.T) {
	const total = 30
	s := newCountingEOSServer(t, total)
	stub := s3stub.New()
	defer stub.Close()
	locations := map[string]string{
		"file": filepath.Join(t.TempDir(), "eos"),
		"mem":  "mem://crawl-xbackend/eos",
		"s3":   stub.URL("crawls", "eos"),
	}

	figures := make(map[string]string, len(locations))
	for backend, loc := range locations {
		s.reset()
		var out bytes.Buffer
		err := run(context.Background(), crawlOpts{
			ArchiveFlags: cli.ArchiveFlags{Archive: loc, From: 1},
			chain:        "eos", endpoint: s.srv.URL,
			workers: 2, ingest: 2, batch: 4, buffer: 8,
		}, &out)
		if err != nil {
			t.Fatalf("%s: archived crawl failed: %v\n%s", backend, err, out.String())
		}
		idx := strings.Index(out.String(), "--- eos figures ---")
		if idx < 0 {
			t.Fatalf("%s: live crawl printed no figures section:\n%s", backend, out.String())
		}
		figures[backend] = out.String()[idx:]
	}
	if figures["mem"] != figures["file"] || figures["s3"] != figures["file"] {
		t.Fatalf("live figures differ across backends:\n--- file ---\n%s\n--- mem ---\n%s\n--- s3 ---\n%s",
			figures["file"], figures["mem"], figures["s3"])
	}

	// Every backend's archive replays to the same bytes the live crawls
	// printed — and without touching the chain endpoint.
	s.reset()
	for backend, loc := range locations {
		rd, err := archive.Open(loc)
		if err != nil {
			t.Fatalf("%s: opening archive: %v", backend, err)
		}
		if !rd.Covers(1, total) {
			t.Fatalf("%s: archive covers [%d, %d] of %d blocks", backend, rd.From(), rd.To(), rd.Blocks())
		}
		kit, err := core.NewStatsKit("eos", chain.ObservationStart, 6*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := core.IngestCrawl(context.Background(), rd, collect.CrawlConfig{
			From: 1, To: total, Workers: 2,
		}, kit.Decoder, core.IngestConfig{}); err != nil {
			t.Fatalf("%s: replay: %v", backend, err)
		}
		if got := kit.Summarize().Render(); got != figures["file"] {
			t.Fatalf("%s: replayed figures differ from live:\n--- live ---\n%s\n--- replay ---\n%s", backend, figures["file"], got)
		}
	}
	if nums := s.fetchedNums(); len(nums) != 0 {
		t.Fatalf("replay hit the network for blocks %v", nums)
	}
}

// TestCrawlArchiveInterruptResume: an interrupted archived crawl keeps a
// consistent (un-torn) archive, and the resumed run extends it to full
// coverage — re-teed boundary blocks dedupe on replay.
func TestCrawlArchiveInterruptResume(t *testing.T) {
	const total = 40
	s := newCountingEOSServer(t, total)
	dir := t.TempDir()
	arch := filepath.Join(dir, "eos-archive")
	opts := crawlOpts{
		ArchiveFlags: cli.ArchiveFlags{Archive: arch, From: 1},
		chain:        "eos", endpoint: s.srv.URL,
		checkpoint: filepath.Join(dir, "eos.ckpt"),
		workers:    2, ingest: 2, batch: 4, buffer: 8,
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.mu.Lock()
	s.limit, s.interrupt = 15, cancel
	s.mu.Unlock()
	var out1 bytes.Buffer
	if err := run(ctx, opts, &out1); err != nil {
		t.Fatalf("interrupted run: %v\n%s", err, out1.String())
	}

	// The interrupted archive must open cleanly — whatever was finalized
	// is intact, nothing is torn.
	rd1, err := archive.Open(arch)
	if err != nil {
		t.Fatalf("interrupted archive is unreadable: %v", err)
	}
	if rd1.Blocks() == 0 {
		t.Fatal("interrupted archive holds nothing although blocks were delivered")
	}

	s.reset()
	var out2 bytes.Buffer
	if err := run(context.Background(), opts, &out2); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out2.String())
	}
	rd2, err := archive.Open(arch)
	if err != nil {
		t.Fatal(err)
	}
	if !rd2.Covers(1, total) {
		t.Fatalf("resumed archive covers [%d, %d] with %d blocks, want all of [1, %d]",
			rd2.From(), rd2.To(), rd2.Blocks(), total)
	}
}

// TestCrawlUnknownChain keeps the flag validation honest.
func TestCrawlUnknownChain(t *testing.T) {
	if err := run(context.Background(), crawlOpts{chain: "doge", endpoint: "http://x"}, io.Discard); err == nil {
		t.Fatal("unknown chain accepted")
	}
}

// TestCrawlShardEmitMerge is the distributed-crawl acceptance path at unit
// scale: three -shard i/3 runs against the same server each emit their
// drained state to a shared mem:// store, cmd/merge's core path
// (LoadShards + MergeShards) folds them, and the merged figures are
// byte-identical to a single-process crawl over the whole range.
func TestCrawlShardEmitMerge(t *testing.T) {
	const total = 42
	s := newCountingEOSServer(t, total)

	// Baseline: one process crawls everything.
	var single bytes.Buffer
	err := run(context.Background(), crawlOpts{
		ArchiveFlags: cli.ArchiveFlags{From: 1},
		chain:        "eos", endpoint: s.srv.URL,
		workers: 2, ingest: 2, batch: 4, buffer: 8,
	}, &single)
	if err != nil {
		t.Fatalf("single crawl: %v\n%s", err, single.String())
	}
	idx := strings.Index(single.String(), "--- eos figures ---")
	if idx < 0 {
		t.Fatalf("single crawl printed no figures:\n%s", single.String())
	}
	want := single.String()[idx:]

	// Three shards, each a separate run; -to stays 0 so every shard
	// resolves head itself (the chain is no longer growing).
	const store = "mem://crawl-shard-emit"
	for i := 1; i <= 3; i++ {
		var shard cli.ShardSpec
		if err := shard.Set(fmt.Sprintf("%d/3", i)); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := run(context.Background(), crawlOpts{
			ArchiveFlags: cli.ArchiveFlags{From: 1},
			chain:        "eos", endpoint: s.srv.URL,
			workers: 2, ingest: 2, batch: 4, buffer: 8,
			shard: shard, emitShard: store,
		}, &out)
		if err != nil {
			t.Fatalf("shard %d/3: %v\n%s", i, err, out.String())
		}
		if !strings.Contains(out.String(), "emitted:") {
			t.Fatalf("shard %d/3 emitted nothing:\n%s", i, out.String())
		}
	}

	shards, err := core.LoadShards(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("loaded %d shards, want 3", len(shards))
	}
	merged, err := core.MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Summary().Render(); got != want {
		t.Fatalf("3-way sharded crawl diverged from single process\n--- single ---\n%s\n--- merged ---\n%s", want, got)
	}
	if got, wantCov := merged.Covered(), (core.BlockRange{From: 1, To: total}); got != wantCov {
		t.Fatalf("merged covered %s, want %s", got, wantCov)
	}
}

// TestCrawlCheckpointEveryKillResumeEmit: the crash-recoverable shard path
// end to end — a crawl killed mid-slice resumes from the blob-store
// checkpoint, refetches nothing the checkpoint covers, and still emits a
// shard whose figures match an uninterrupted single-process crawl.
func TestCrawlCheckpointEveryKillResumeEmit(t *testing.T) {
	const total = 40
	s := newCountingEOSServer(t, total)

	// Oracle: one uninterrupted process over the whole range.
	var single bytes.Buffer
	if err := run(context.Background(), crawlOpts{
		ArchiveFlags: cli.ArchiveFlags{From: 1},
		chain:        "eos", endpoint: s.srv.URL,
		workers: 2, ingest: 2, batch: 4, buffer: 8,
	}, &single); err != nil {
		t.Fatalf("single crawl: %v\n%s", err, single.String())
	}
	idx := strings.Index(single.String(), "--- eos figures ---")
	if idx < 0 {
		t.Fatalf("single crawl printed no figures:\n%s", single.String())
	}
	want := single.String()[idx:]

	const store = "mem://crawl-ckpt-every"
	opts := crawlOpts{
		ArchiveFlags: cli.ArchiveFlags{From: 1, To: total},
		chain:        "eos", endpoint: s.srv.URL,
		workers: 2, ingest: 2, batch: 4, buffer: 8,
		emitShard: store, checkpointEvery: 8,
	}

	s.reset()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.mu.Lock()
	s.limit, s.interrupt = 18, cancel
	s.mu.Unlock()
	var out1 bytes.Buffer
	if err := run(ctx, opts, &out1); err == nil {
		t.Fatalf("interrupted run exited clean:\n%s", out1.String())
	}
	if !strings.Contains(out1.String(), "rerun with the same flags") {
		t.Fatalf("interrupted run printed no resume hint:\n%s", out1.String())
	}

	// The surviving checkpoint defines which blocks must never be refetched.
	st, err := blobstore.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	ckptKey := coord.CheckpointKey("eos", 1, total)
	raw, err := st.Get(context.Background(), ckptKey)
	if err != nil {
		t.Fatalf("interrupted run left no checkpoint: %v", err)
	}
	ck, err := core.DecodeShard(raw)
	if err != nil {
		t.Fatal(err)
	}
	cov := ck.Covered()
	if !cov.Known() || cov.To != total {
		t.Fatalf("checkpoint covers %s, want a suffix ending at %d", cov, total)
	}

	s.reset()
	var out2 bytes.Buffer
	if err := run(context.Background(), opts, &out2); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out2.String())
	}
	for _, num := range s.fetchedNums() {
		if num >= cov.From && num <= cov.To {
			t.Errorf("resumed run refetched block %d inside checkpointed range %s", num, cov)
		}
	}
	if !strings.Contains(out2.String(), "resumed:") {
		t.Fatalf("resumed run did not report the checkpoint it picked up:\n%s", out2.String())
	}

	shards, err := core.LoadShards(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 {
		t.Fatalf("loaded %d shards, want 1", len(shards))
	}
	if got := shards[0].Summary().Render(); got != want {
		t.Fatalf("kill-resumed crawl diverged from single process\n--- single ---\n%s\n--- resumed ---\n%s", want, got)
	}
	// The emitted shard supersedes the checkpoint.
	if _, err := st.Get(context.Background(), ckptKey); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("checkpoint survived the shard emit (err %v)", err)
	}
}

// TestCrawlCheckpointEveryValidation: the flag combinations that would
// silently corrupt recovery are refused up front.
func TestCrawlCheckpointEveryValidation(t *testing.T) {
	cases := []struct {
		name, wantSub string
		mutate        func(*crawlOpts)
	}{
		{"without emit-shard", "requires -emit-shard", func(o *crawlOpts) {}},
		{"with checkpoint file", "incompatible with -checkpoint", func(o *crawlOpts) {
			o.emitShard, o.checkpoint = "mem://ckpt-every-val", "frontier.ckpt"
		}},
		{"with archive", "incompatible with -archive", func(o *crawlOpts) {
			o.emitShard, o.Archive = "mem://ckpt-every-val", "mem://ckpt-every-arch"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := crawlOpts{
				ArchiveFlags: cli.ArchiveFlags{From: 1, To: 5},
				chain:        "eos", endpoint: "http://127.0.0.1:1",
				workers: 1, ingest: 1, batch: 1, buffer: 1,
				checkpointEvery: 2,
			}
			tc.mutate(&o)
			err := run(context.Background(), o, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
}

// TestCrawlEmitShardRefusesResume: a run that skipped blocks via a
// checkpoint did not fold them into its own aggregate, so emitting a shard
// claiming the whole range must refuse.
func TestCrawlEmitShardRefusesResume(t *testing.T) {
	const total = 30
	s := newCountingEOSServer(t, total)
	ckpt := filepath.Join(t.TempDir(), "eos.ckpt")
	opts := crawlOpts{
		ArchiveFlags: cli.ArchiveFlags{From: 1},
		chain:        "eos", endpoint: s.srv.URL, checkpoint: ckpt,
		workers: 2, ingest: 2, batch: 4, buffer: 8,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.mu.Lock()
	s.limit, s.interrupt = 10, cancel
	s.mu.Unlock()
	if err := run(ctx, opts, io.Discard); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}

	s.reset()
	opts.emitShard = "mem://crawl-emit-resume"
	var out bytes.Buffer
	err := run(context.Background(), opts, &out)
	if err == nil || !strings.Contains(err.Error(), "refusing to emit") {
		t.Fatalf("resumed run emitted a shard (err %v):\n%s", err, out.String())
	}
	if _, lerr := core.LoadShards(context.Background(), opts.emitShard); lerr == nil {
		t.Fatal("a shard blob landed in the store despite the refusal")
	}
}
