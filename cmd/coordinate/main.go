// Command coordinate is the fault-tolerant supervisor of a distributed
// crawl: it pins the block range (resolving head once if -to is 0), cuts
// it into -shards contiguous slices, claims each slice with a lease blob
// in the shared store, and launches one worker subprocess per slice —
// relaunching crashed or flaky workers under a bounded retry policy with
// exponential backoff and full jitter (internal/retry). Workers crawl
// with crash-recoverable checkpoints (-checkpoint-every): a worker that
// is SIGKILLed mid-slice resumes its relaunch from the last checkpoint
// instead of block one.
//
// As each worker exits, the coordinator validates the shard blob it must
// have emitted (present, decodable, covering exactly the slice) — a
// clean-looking exit is not believed. When every slice validates, the
// shards are merged through the same validation cmd/merge applies and
// the figures print to stdout, byte-identical to a single-process crawl.
//
// Degradation is graceful and loud: when a slice exhausts its retries
// the coordinator still merges what arrived, prints the PARTIAL figures,
// writes a machine-readable gap report (-gap-report) naming the missing
// block ranges and per-slice errors, and exits non-zero.
//
// The coordinator is itself killable. It wins a run-level lease
// (lease/run-<chain>.lease) before doing anything — exactly one active
// coordinator per chain — and checkpoints a run-state record
// (run/<chain>.state) after every task transition: the pinned range,
// per-slice status, fence tokens and validated shards. A -standby
// instance polls the election and takes over on lease expiry by loading
// that state, resuming mid-run instead of re-cutting. Every worker
// crawls under a fence token (its slice lease's attempt count) stamped
// into the emitted shard, so a zombie worker whose lease was reclaimed
// cannot clobber the reclaimer's newer shard — stale fences are refused
// at validation and merge. While running, the active coordinator serves
// GET /v1/progress (-progress-addr): the gap-report shape plus per-task
// lease/attempt/fence status, with the election epoch in X-Coord-Epoch.
//
// Usage:
//
//	coordinate -chain eos -endpoint URL -to N -shards 4 -store STORE [-checkpoint-every N] [-gap-report FILE] [-standby] [-progress-addr HOST:PORT]
//
// The store may use the faulty+ scheme (see internal/blobstore) to
// inject seeded random faults; -chaos-kill I additionally SIGKILLs slice
// I's first worker attempt right after its first checkpoint, and
// -chaos-kill-coordinator SIGKILLs the active coordinator itself right
// after its first slice validates — the chaos harness the CI chaos job
// drives, with a -standby instance finishing the run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/blobstore"
	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/retry"
)

// workerEnv carries a worker invocation's whole configuration from the
// coordinator process to the re-exec'd worker subprocess as one JSON
// blob, so the worker needs no flag parsing of its own and the test
// binary can serve as the worker executable (TestMain re-exec).
const workerEnv = "COORDINATE_WORKER_PAYLOAD"

// workerPayload is the JSON shape under workerEnv.
type workerPayload struct {
	Chain    string        `json:"chain"`
	Endpoint string        `json:"endpoint"`
	From     int64         `json:"from"`
	To       int64         `json:"to"`
	Store    string        `json:"store"`
	Every    int64         `json:"every"`
	Workers  int           `json:"workers"`
	Ingest   int           `json:"ingest"`
	Batch    int           `json:"batch"`
	Buffer   int           `json:"buffer"`
	Retries  int           `json:"retries"`
	Backoff  time.Duration `json:"backoff"`
	// Fence is the lease fence token the worker stamps into its emitted
	// shard — the slice lease's attempt count, granted by the coordinator
	// that launched this worker.
	Fence uint64 `json:"fence"`
	// KillAfterCheckpoint makes the worker SIGKILL itself right after its
	// first successful checkpoint Put — the chaos harness's way of dying
	// at a known-recoverable instant.
	KillAfterCheckpoint bool `json:"kill_after_checkpoint"`
}

type coordOpts struct {
	chain          string
	endpoint       string
	from, to       int64
	shards         int
	store          string
	every          int64
	leaseTTL       time.Duration
	attempts       int
	backoff        time.Duration
	parallel       int
	workers        int
	ingest         int
	batch          int
	buffer         int
	retries        int
	fetchBO        time.Duration
	gapReport      string
	chaosKill      int
	owner          string
	standby        bool
	progressAddr   string
	chaosKillCoord bool
}

func main() {
	// Worker mode: the coordinator re-execs this very binary with the
	// payload env set. Check before flag parsing — a worker has no flags.
	if payload := os.Getenv(workerEnv); payload != "" {
		os.Exit(workerMain(payload, os.Stderr))
	}

	var o coordOpts
	flag.StringVar(&o.chain, "chain", "", "eos, tezos or xrp")
	flag.StringVar(&o.endpoint, "endpoint", "", "endpoint URL every worker crawls")
	flag.Int64Var(&o.from, "from", 1, "first block")
	flag.Int64Var(&o.to, "to", 0, "last block (0 = resolve head once, before cutting slices)")
	flag.IntVar(&o.shards, "shards", 2, "slices to cut the range into (one worker subprocess each)")
	flag.StringVar(&o.store, "store", "", "shared blob store for leases, checkpoints and shards (supports the faulty+ chaos scheme)")
	flag.Int64Var(&o.every, "checkpoint-every", 0, "blocks per crash-recoverable worker checkpoint (0 = none: a killed worker restarts its slice)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 2*time.Minute, "lease time-to-live; a slice whose coordinator misses renewals this long is reclaimable")
	flag.IntVar(&o.attempts, "attempts", 4, "worker launches per slice before giving up")
	flag.DurationVar(&o.backoff, "backoff", 500*time.Millisecond, "base relaunch backoff (exponential, full jitter)")
	flag.IntVar(&o.parallel, "parallel", 0, "slices running concurrently (0 = all)")
	flag.IntVar(&o.workers, "workers", 4, "concurrent fetchers per worker (xrp uses 1)")
	flag.IntVar(&o.ingest, "ingest", 2, "decode/ingest workers per worker")
	flag.IntVar(&o.batch, "batch", 16, "blocks per aggregator lock acquisition")
	flag.IntVar(&o.buffer, "buffer", 64, "per-worker stream buffer")
	flag.IntVar(&o.retries, "fetch-retries", 3, "per-block fetch retries inside a worker")
	flag.DurationVar(&o.fetchBO, "fetch-backoff", 200*time.Millisecond, "per-block fetch retry base backoff")
	flag.StringVar(&o.gapReport, "gap-report", "", "write the machine-readable gap report JSON to this file (default: stderr when the run is incomplete)")
	flag.IntVar(&o.chaosKill, "chaos-kill", 0, "chaos: SIGKILL slice I's first worker attempt after its first checkpoint (0 = off)")
	flag.StringVar(&o.owner, "owner", "", "coordinator name in lease records (default coordinator-<pid>; must be unique per process)")
	flag.BoolVar(&o.standby, "standby", false, "stand by: poll the run-level lease and take over the run when the active coordinator's lease expires")
	flag.StringVar(&o.progressAddr, "progress-addr", "", "serve GET /v1/progress on this host:port while running (503 until the first snapshot)")
	flag.BoolVar(&o.chaosKillCoord, "chaos-kill-coordinator", false, "chaos: SIGKILL this coordinator right after its first slice validates (a -standby instance must finish the run)")
	flag.Parse()
	if o.chain == "" || o.endpoint == "" || o.store == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, o, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinate:", err)
		os.Exit(1)
	}
}

// workerMain is one shard worker: decode the payload, crawl the slice
// with crash-recoverable checkpoints, emit the shard. It is this binary
// re-exec'd, so a SIGKILL here is a real process death the coordinator
// observes and retries.
func workerMain(payload string, log io.Writer) int {
	var p workerPayload
	if err := json.Unmarshal([]byte(payload), &p); err != nil {
		fmt.Fprintf(log, "worker: bad payload: %v\n", err)
		return 2
	}
	kit, err := core.NewStatsKit(p.Chain, chain.ObservationStart, 6*time.Hour)
	if err != nil {
		fmt.Fprintf(log, "worker: unknown chain %q\n", p.Chain)
		return 2
	}
	var fetcher collect.BlockFetcher
	switch p.Chain {
	case "eos":
		fetcher = collect.NewEOSClient(p.Endpoint)
	case "tezos":
		fetcher = collect.NewTezosClient(p.Endpoint)
	case "xrp":
		client := collect.NewXRPClient(p.Endpoint)
		defer client.Close()
		fetcher = client
		p.Workers = 1
	}
	store, err := blobstore.Resolve(p.Store)
	if err != nil {
		fmt.Fprintf(log, "worker: %v\n", err)
		return 2
	}
	cfg := coord.CrawlerConfig{
		Kit: kit, Fetcher: fetcher, From: p.From, To: p.To,
		Store: store, CheckpointEvery: p.Every,
		Workers: p.Workers, Ingest: p.Ingest, Batch: p.Batch, Buffer: p.Buffer,
		MaxRetries: p.Retries, Backoff: p.Backoff,
		Fence: p.Fence,
		Log:   log,
	}
	if p.KillAfterCheckpoint {
		cfg.AfterCheckpoint = func(core.BlockRange) {
			// Die NOW, uncatchably — the checkpoint just written is the
			// recovery point the relaunched attempt must resume from.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
	if _, err := coord.RunShardCrawl(context.Background(), cfg); err != nil {
		fmt.Fprintf(log, "worker: %v\n", err)
		return 1
	}
	return 0
}

// run executes one coordinated crawl. It is the whole command behind flag
// parsing and signal wiring so tests can drive it hermetically (with the
// test binary itself as the worker executable).
func run(ctx context.Context, o coordOpts, out, diag io.Writer) error {
	// Worker subprocesses, the renewal goroutines and the coordinator all
	// write diagnostics concurrently; serialize whole writes so lines
	// interleave instead of interleaving bytes.
	diag = &syncWriter{w: diag}
	kit, err := core.NewStatsKit(o.chain, chain.ObservationStart, 6*time.Hour)
	if err != nil {
		return fmt.Errorf("unknown chain %q", o.chain)
	}
	_ = kit // only validates the chain name; workers build their own kits

	owner := o.owner
	if owner == "" {
		// Unique per process: the restart-after-crash re-claim path treats
		// a live lease under OUR name as ours, so two coordinators must
		// never share a name by default.
		owner = fmt.Sprintf("coordinator-%d", os.Getpid())
	}

	store, err := blobstore.Resolve(o.store)
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locating worker executable: %w", err)
	}

	// Progress export: listening from process start, 503 with epoch 0
	// until the first snapshot publishes — a standby's port answers while
	// it waits, so pollers can watch the takeover happen.
	tracker := &coord.ProgressTracker{}
	if o.progressAddr != "" {
		ln, lerr := net.Listen("tcp", o.progressAddr)
		if lerr != nil {
			return fmt.Errorf("progress listener: %w", lerr)
		}
		srv := &http.Server{Handler: coord.NewProgressHandler(tracker)}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(diag, "coordinate: progress at http://%s/v1/progress\n", ln.Addr())
	}

	launcher := &workerLauncher{opts: o, exe: exe, diag: diag}
	cfg := coord.Config{
		Chain: o.chain, From: o.from, To: o.to,
		Shards:   o.shards,
		Store:    store,
		Owner:    owner,
		LeaseTTL: o.leaseTTL,
		Retry:    retry.Policy{Attempts: o.attempts, Base: o.backoff},
		Parallel: o.parallel,
		Run:      launcher.launch,
		Log:      diag,
		Progress: tracker,
		// Head is resolved lazily, ONCE per run lineage: only when no run
		// state exists to resume. Every slice is cut from the same pinned
		// span, never from each worker's own racing notion of "head" — and
		// a takeover adopts the interrupted run's pin instead of this.
		PinHead: func(ctx context.Context) (int64, error) {
			var head collect.BlockFetcher
			switch o.chain {
			case "eos":
				head = collect.NewEOSClient(o.endpoint)
			case "tezos":
				head = collect.NewTezosClient(o.endpoint)
			case "xrp":
				client := collect.NewXRPClient(o.endpoint)
				defer client.Close()
				head = client
			}
			to, err := head.Head(ctx)
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(diag, "coordinate: pinned head at %d\n", to)
			return to, nil
		},
	}
	if o.chaosKillCoord {
		var once sync.Once
		cfg.AfterTaskDone = func(t coord.Task) {
			once.Do(func() {
				fmt.Fprintf(diag, "coordinate: chaos: SIGKILLing active coordinator after slice %d validated\n", t.Index)
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			})
		}
	}

	if o.standby {
		rec, finished, serr := standbyAwait(ctx, o, store, owner, diag)
		if serr != nil {
			return serr
		}
		if finished {
			return nil
		}
		cfg.RunLease = rec
	}

	res, runErr := coord.Run(ctx, cfg)
	if res == nil {
		return runErr
	}

	// Figures first — partial or complete, they are the deliverable. The
	// gap report then says exactly how much to trust them.
	if res.Merged != nil {
		fmt.Fprint(out, res.Merged.Summary().Render())
	}
	if o.gapReport != "" {
		f, ferr := os.Create(o.gapReport)
		if ferr != nil {
			return errors.Join(runErr, ferr)
		}
		werr := res.Report.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return errors.Join(runErr, fmt.Errorf("writing gap report: %w", werr))
		}
		fmt.Fprintf(diag, "coordinate: gap report written to %s\n", o.gapReport)
	} else if !res.Report.Complete {
		if werr := res.Report.WriteJSON(diag); werr != nil {
			return errors.Join(runErr, werr)
		}
	}
	return runErr
}

// standbyAwait is the standby election loop: poll the run-level lease and
// run state until this process either wins a takeover (returning the won
// lease for coord.Run to adopt) or observes the run complete (finished =
// true). A standby only ever CONTINUES a run — it claims the election
// only after evidence one exists (a lease record, live or expired, or a
// run-state checkpoint); a fresh store just keeps it waiting, so starting
// the standby before the active is safe.
func standbyAwait(ctx context.Context, o coordOpts, store blobstore.Store, owner string, diag io.Writer) (*coord.LeaseRecord, bool, error) {
	leases := coord.NewLeases(store, owner, o.leaseTTL)
	task := coord.RunLeaseTask(o.chain)
	poll := o.leaseTTL / 3
	fmt.Fprintf(diag, "coordinate: standby %s: watching %s (poll %v)\n", owner, task, poll)
	sawRun := false
	for {
		_, hasState, serr := coord.LoadRunState(ctx, store, o.chain)
		if serr != nil {
			fmt.Fprintf(diag, "coordinate: standby: reading run state (transient): %v\n", serr)
		}
		_, hasLease, lerr := leases.Holder(ctx, task)
		if lerr != nil {
			fmt.Fprintf(diag, "coordinate: standby: reading run lease (transient): %v\n", lerr)
		}
		if hasState || hasLease {
			sawRun = true
		}
		switch {
		case sawRun && !hasState && !hasLease:
			// Completion deletes the state, then the lease record; death
			// leaves the record behind (expired). Both gone after a run we
			// watched means it finished.
			fmt.Fprintf(diag, "coordinate: standby: run for %s completed; standing down\n", o.chain)
			return nil, true, nil
		case sawRun && (hasState || hasLease):
			rec, cerr := leases.Claim(ctx, task)
			if cerr == nil {
				if _, ok, err := coord.LoadRunState(ctx, store, o.chain); err == nil && !ok {
					// Won the election but the state is gone: the active
					// completed between our probe and the claim.
					_ = leases.Release(ctx, rec)
					fmt.Fprintf(diag, "coordinate: standby: run for %s completed; standing down\n", o.chain)
					return nil, true, nil
				}
				fmt.Fprintf(diag, "coordinate: standby %s: taking over %s (epoch %d)\n", owner, o.chain, rec.Attempt)
				return &rec, false, nil
			}
			var held *coord.ErrHeld
			if !errors.As(cerr, &held) {
				fmt.Fprintf(diag, "coordinate: standby: election claim (transient): %v\n", cerr)
			}
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// syncWriter serializes Write calls from the coordinator's goroutines
// and its worker subprocesses onto one underlying writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// workerLauncher execs one worker subprocess per attempt, tracking
// attempt counts per slice so -chaos-kill poisons only the FIRST attempt
// of its target (the relaunch must be allowed to recover).
type workerLauncher struct {
	opts coordOpts
	exe  string
	diag io.Writer

	mu       sync.Mutex
	attempts map[int]int
}

func (l *workerLauncher) attempt(index int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.attempts == nil {
		l.attempts = make(map[int]int)
	}
	l.attempts[index]++
	return l.attempts[index]
}

func (l *workerLauncher) launch(ctx context.Context, t coord.Task) error {
	o := l.opts
	attempt := l.attempt(t.Index)
	p := workerPayload{
		Chain: o.chain, Endpoint: o.endpoint,
		From: t.From, To: t.To,
		Store: o.store, Every: o.every,
		Workers: o.workers, Ingest: o.ingest, Batch: o.batch, Buffer: o.buffer,
		Retries: o.retries, Backoff: o.fetchBO,
		Fence:               t.Fence,
		KillAfterCheckpoint: o.chaosKill == t.Index && attempt == 1,
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return retry.Permanent(err)
	}
	cmd := exec.CommandContext(ctx, l.exe)
	cmd.Env = append(os.Environ(), workerEnv+"="+string(raw))
	cmd.Stdout = l.diag
	cmd.Stderr = l.diag
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("worker %s (attempt %d): %w", t.Name(), attempt, err)
	}
	return nil
}
