package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cli"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/eos"
	"repro/internal/rpcserve"
)

// TestMain doubles this test binary as the worker executable: when the
// coordinator under test execs os.Executable() with the payload env set,
// the subprocess lands here and runs workerMain instead of the tests —
// so the chaos tests SIGKILL REAL processes, not simulated ones. The
// coordEnv trampoline does the same for a whole ACTIVE COORDINATOR, so
// the standby-takeover test can SIGKILL a real coordinator process.
// workerEnv wins when both are set: a worker launched by a trampolined
// coordinator inherits the coordinator's env.
func TestMain(m *testing.M) {
	if payload := os.Getenv(workerEnv); payload != "" {
		os.Exit(workerMain(payload, os.Stderr))
	}
	if payload := os.Getenv(coordEnv); payload != "" {
		os.Exit(coordMain(payload))
	}
	os.Exit(m.Run())
}

// coordEnv carries a full coordinator configuration into a re-exec'd test
// binary, turning it into a real, killable active coordinator process.
const coordEnv = "COORDINATE_COORD_OPTS"

// coordPayload mirrors coordOpts with exported fields for the JSON
// round-trip through coordEnv.
type coordPayload struct {
	Chain          string        `json:"chain"`
	Endpoint       string        `json:"endpoint"`
	From           int64         `json:"from"`
	To             int64         `json:"to"`
	Shards         int           `json:"shards"`
	Store          string        `json:"store"`
	Every          int64         `json:"every"`
	LeaseTTL       time.Duration `json:"lease_ttl"`
	Attempts       int           `json:"attempts"`
	Backoff        time.Duration `json:"backoff"`
	Parallel       int           `json:"parallel"`
	Workers        int           `json:"workers"`
	Ingest         int           `json:"ingest"`
	Batch          int           `json:"batch"`
	Buffer         int           `json:"buffer"`
	Retries        int           `json:"retries"`
	FetchBO        time.Duration `json:"fetch_backoff"`
	GapReport      string        `json:"gap_report"`
	ChaosKill      int           `json:"chaos_kill"`
	Owner          string        `json:"owner"`
	Standby        bool          `json:"standby"`
	ProgressAddr   string        `json:"progress_addr"`
	ChaosKillCoord bool          `json:"chaos_kill_coordinator"`
}

func payloadFrom(o coordOpts) coordPayload {
	return coordPayload{
		Chain: o.chain, Endpoint: o.endpoint, From: o.from, To: o.to,
		Shards: o.shards, Store: o.store, Every: o.every,
		LeaseTTL: o.leaseTTL, Attempts: o.attempts, Backoff: o.backoff,
		Parallel: o.parallel, Workers: o.workers, Ingest: o.ingest,
		Batch: o.batch, Buffer: o.buffer, Retries: o.retries, FetchBO: o.fetchBO,
		GapReport: o.gapReport, ChaosKill: o.chaosKill, Owner: o.owner,
		Standby: o.standby, ProgressAddr: o.progressAddr, ChaosKillCoord: o.chaosKillCoord,
	}
}

func (p coordPayload) opts() coordOpts {
	return coordOpts{
		chain: p.Chain, endpoint: p.Endpoint, from: p.From, to: p.To,
		shards: p.Shards, store: p.Store, every: p.Every,
		leaseTTL: p.LeaseTTL, attempts: p.Attempts, backoff: p.Backoff,
		parallel: p.Parallel, workers: p.Workers, ingest: p.Ingest,
		batch: p.Batch, buffer: p.Buffer, retries: p.Retries, fetchBO: p.FetchBO,
		gapReport: p.GapReport, chaosKill: p.ChaosKill, owner: p.Owner,
		standby: p.Standby, progressAddr: p.ProgressAddr, chaosKillCoord: p.ChaosKillCoord,
	}
}

func coordMain(payload string) int {
	var p coordPayload
	if err := json.Unmarshal([]byte(payload), &p); err != nil {
		fmt.Fprintf(os.Stderr, "coordinator trampoline: bad payload: %v\n", err)
		return 2
	}
	if err := run(context.Background(), p.opts(), os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coordinate:", err)
		return 1
	}
	return 0
}

// newEOSServer serves a deterministic EOS chainsim over real HTTP so
// worker subprocesses can reach it.
func newEOSServer(t *testing.T, nBlocks int) *httptest.Server {
	t.Helper()
	c := eos.New(eos.DefaultConfig(1000))
	alice, bob := eos.MustName("alice"), eos.MustName("bob")
	for _, n := range []eos.Name{alice, bob} {
		if err := c.CreateAccount(n, eos.SystemAccount); err != nil {
			t.Fatal(err)
		}
		if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, n, chain.EOSAsset(1_000_0000)); err != nil {
			t.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 100_0000, 100_0000)
	}
	for i := 0; i < nBlocks; i++ {
		c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, alice, map[string]string{
			"from": "alice", "to": "bob", "quantity": "0.0001 EOS",
		}))
		c.ProduceBlock()
	}
	srv := httptest.NewServer(rpcserve.NewEOSServer(c))
	t.Cleanup(srv.Close)
	return srv
}

// blackout wraps an EOS server, answering 500 for every get_block inside
// [lo, hi] — a range of history that is permanently dark.
func blackout(t *testing.T, inner *httptest.Server, lo, hi int64) *httptest.Server {
	t.Helper()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/get_block") {
			body, _ := io.ReadAll(r.Body)
			var req struct {
				Num json.Number `json:"block_num_or_id"`
			}
			json.Unmarshal(body, &req)
			num, _ := req.Num.Int64()
			if num >= lo && num <= hi {
				http.Error(w, "blackout", http.StatusInternalServerError)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		inner.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

func eosHead(t *testing.T, url string) int64 {
	t.Helper()
	head, err := collect.NewEOSClient(url).Head(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return head
}

// oracle crawls [1, to] in one process and renders the figures — the
// byte-identity reference the distributed runs are diffed against.
func oracle(t *testing.T, url string, to int64) string {
	t.Helper()
	kit, err := core.NewStatsKit("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.IngestCrawl(context.Background(), collect.NewEOSClient(url),
		collect.CrawlConfig{From: 1, To: to, Workers: 4},
		kit.Decoder, core.IngestConfig{}); err != nil {
		t.Fatalf("oracle crawl: %v", err)
	}
	return kit.Summarize().Render()
}

func testOpts(endpoint, store string) coordOpts {
	return coordOpts{
		chain: "eos", endpoint: endpoint, from: 1, to: 0,
		shards: 3, store: store, every: 5,
		leaseTTL: time.Minute, attempts: 8, backoff: 5 * time.Millisecond,
		workers: 2, ingest: 2, batch: 4, buffer: 8,
		retries: 2, fetchBO: 5 * time.Millisecond,
	}
}

// TestCoordinateChaosKillResume is the command-level chaos acceptance
// path: seeded store faults on every blob operation AND a worker
// subprocess SIGKILLed right after its first checkpoint. The coordinator
// must relaunch it, the relaunch must resume from the checkpoint, and
// the merged figures must be byte-identical to a single-process crawl.
func TestCoordinateChaosKillResume(t *testing.T) {
	srv := newEOSServer(t, 45)
	head := eosHead(t, srv.URL)
	want := oracle(t, srv.URL, head)

	dir := t.TempDir()
	o := testOpts(srv.URL, "faulty+file://"+filepath.Join(dir, "store")+"?fault=0.01&fault-seed=7")
	o.gapReport = filepath.Join(dir, "gaps.json")
	o.chaosKill = 2

	var out, diag bytes.Buffer
	if err := run(context.Background(), o, &out, &diag); err != nil {
		t.Fatalf("coordinate under chaos: %v\n%s", err, diag.String())
	}
	if out.String() != want {
		t.Errorf("merged figures differ from single-process oracle\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
	// The SIGKILL really happened and was retried, not dodged.
	if !strings.Contains(diag.String(), "signal: killed") {
		t.Errorf("chaos kill never fired:\n%s", diag.String())
	}
	if !strings.Contains(diag.String(), "resuming:") {
		t.Errorf("relaunched worker did not resume from its checkpoint:\n%s", diag.String())
	}

	raw, err := os.ReadFile(o.gapReport)
	if err != nil {
		t.Fatalf("gap report not written: %v", err)
	}
	var report struct {
		Complete bool             `json:"complete"`
		Missing  []map[string]any `json:"missing"`
		Failures []map[string]any `json:"failures"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("gap report is not JSON: %v\n%s", err, raw)
	}
	if !report.Complete || len(report.Missing) != 0 || len(report.Failures) != 0 {
		t.Errorf("complete run's gap report claims gaps:\n%s", raw)
	}
}

// TestCoordinateGapReportPartial: one slice's history is permanently
// dark. The run must exit non-nil but still print the partial figures
// and write a gap report naming exactly the missing range.
func TestCoordinateGapReportPartial(t *testing.T) {
	inner := newEOSServer(t, 30)
	head := eosHead(t, inner.URL)
	spec := cli.ShardSpec{I: 2, N: 3}
	lo, hi, err := spec.Cut(1, head)
	if err != nil {
		t.Fatal(err)
	}
	srv := blackout(t, inner, lo, hi)

	dir := t.TempDir()
	o := testOpts(srv.URL, "file://"+filepath.Join(dir, "store"))
	o.to = head
	o.attempts = 2
	o.retries = 0
	o.gapReport = filepath.Join(dir, "gaps.json")

	var out, diag bytes.Buffer
	err = run(context.Background(), o, &out, &diag)
	if err == nil {
		t.Fatalf("run with a dark slice reported success:\n%s", diag.String())
	}
	if !strings.Contains(err.Error(), "partial") {
		t.Errorf("error %v does not say the figures are partial", err)
	}
	if !strings.Contains(out.String(), "--- eos figures ---") {
		t.Errorf("degraded run printed no partial figures:\n%s", out.String())
	}

	raw, rerr := os.ReadFile(o.gapReport)
	if rerr != nil {
		t.Fatalf("gap report not written: %v", rerr)
	}
	var report struct {
		Complete bool `json:"complete"`
		Missing  []struct {
			From int64 `json:"from"`
			To   int64 `json:"to"`
		} `json:"missing"`
		Failures []struct {
			Task  string `json:"task"`
			Error string `json:"error"`
		} `json:"failures"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("gap report is not JSON: %v\n%s", err, raw)
	}
	if report.Complete {
		t.Errorf("degraded run's report claims completeness:\n%s", raw)
	}
	if len(report.Missing) != 1 || report.Missing[0].From != lo || report.Missing[0].To != hi {
		t.Errorf("missing ranges %+v, want exactly [%d, %d]", report.Missing, lo, hi)
	}
	if len(report.Failures) != 1 || !strings.Contains(report.Failures[0].Task, "eos-") {
		t.Errorf("failures %+v do not name the dark slice", report.Failures)
	}
}

// delayProxy wraps an EOS server with a fixed per-get_block delay so a
// coordinated crawl lives long enough to be observed (and killed)
// mid-run.
func delayProxy(t *testing.T, inner *httptest.Server, d time.Duration) *httptest.Server {
	t.Helper()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/get_block") {
			time.Sleep(d)
		}
		inner.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

// TestCoordinateStandbyTakeover is the coordinator-kill chaos leg: a REAL
// active coordinator process (this test binary, re-exec'd through the
// coordEnv trampoline) SIGKILLs itself right after its first slice
// validates, under 1% injected store faults. A -standby instance watching
// the same store must take over on lease expiry, resume from the run
// state, and finish with figures byte-identical to the single-process
// oracle. While the active lives, its /v1/progress endpoint must serve a
// parseable mid-run gap report.
func TestCoordinateStandbyTakeover(t *testing.T) {
	inner := newEOSServer(t, 45)
	head := eosHead(t, inner.URL)
	want := oracle(t, inner.URL, head)
	srv := delayProxy(t, inner, 20*time.Millisecond)

	dir := t.TempDir()
	storeLoc := "faulty+file://" + filepath.Join(dir, "store") + "?fault=0.01&fault-seed=11"

	// The active: short lease TTL so its death is detected quickly, chaos
	// kill armed, progress served on an ephemeral port the test discovers
	// from the diagnostic line.
	o := testOpts(srv.URL, storeLoc)
	o.leaseTTL = time.Second
	o.backoff = 50 * time.Millisecond
	o.owner = "active-coordinator"
	o.progressAddr = "127.0.0.1:0"
	o.chaosKillCoord = true

	payload, err := json.Marshal(payloadFrom(o))
	if err != nil {
		t.Fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), coordEnv+"="+string(payload))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var activeOut bytes.Buffer
	cmd.Stdout = &activeOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Scan the active's stderr live: capture everything for post-mortem
	// assertions and surface the progress address as soon as it prints.
	addrCh := make(chan string, 1)
	var activeDiag strings.Builder
	var diagMu sync.Mutex
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			diagMu.Lock()
			activeDiag.WriteString(line + "\n")
			diagMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "coordinate: progress at http://"); ok {
				select {
				case addrCh <- strings.TrimSuffix(rest, "/v1/progress"):
				default:
				}
			}
		}
	}()
	diag := func() string {
		diagMu.Lock()
		defer diagMu.Unlock()
		return activeDiag.String()
	}

	// The standby watches the same store from this process, concurrently
	// with the active — exercising the held-election wait path too.
	so := testOpts(srv.URL, storeLoc)
	so.leaseTTL = time.Second
	so.backoff = 50 * time.Millisecond
	so.attempts = 10 // claim polling must outlive the dead active's task leases
	so.owner = "standby-coordinator"
	so.standby = true
	so.gapReport = filepath.Join(dir, "gaps.json")
	var standbyOut, standbyDiag bytes.Buffer
	standbyErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	go func() { standbyErr <- run(ctx, so, &standbyOut, &standbyDiag) }()

	// Mid-run: the active's progress endpoint must serve a parseable
	// gap-report-shaped snapshot before the kill lands.
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("active never announced its progress address:\n%s", diag())
	}
	var progress struct {
		Report struct {
			Chain    string `json:"chain"`
			From     int64  `json:"from"`
			To       int64  `json:"to"`
			Complete bool   `json:"complete"`
		} `json:"report"`
		Epoch int `json:"epoch"`
	}
	polled := false
	for start := time.Now(); time.Since(start) < 15*time.Second && !polled; {
		resp, perr := http.Get("http://" + addr + "/v1/progress")
		if perr != nil {
			break // the active is already dead; the kill beat the poll
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if jerr := json.Unmarshal(body, &progress); jerr != nil {
				t.Fatalf("mid-run progress is not JSON: %v\n%s", jerr, body)
			}
			if progress.Report.Chain != "eos" || progress.Report.From != 1 || progress.Report.To != head {
				t.Errorf("mid-run progress report: %+v, want [1, %d] on eos", progress.Report, head)
			}
			if progress.Report.Complete {
				t.Error("mid-run progress claims completion")
			}
			if got := resp.Header.Get("X-Coord-Epoch"); got != fmt.Sprint(progress.Epoch) {
				t.Errorf("X-Coord-Epoch %q does not match body epoch %d", got, progress.Epoch)
			}
			polled = true
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The kill is real: the active dies by SIGKILL, not a clean exit.
	werr := cmd.Wait()
	<-scanDone
	if werr == nil || !strings.Contains(werr.Error(), "signal: killed") {
		t.Fatalf("active coordinator exit: %v, want SIGKILL\n%s", werr, diag())
	}
	if !strings.Contains(diag(), "chaos: SIGKILLing active coordinator") {
		t.Fatalf("chaos kill never armed:\n%s", diag())
	}
	if !polled {
		t.Logf("note: active died before a mid-run progress poll landed")
	}

	// The standby takes over and finishes the run completely.
	var serr error
	select {
	case serr = <-standbyErr:
	case <-time.After(2 * time.Minute):
		t.Fatalf("standby never finished:\n%s", standbyDiag.String())
	}
	if serr != nil {
		t.Fatalf("standby takeover run: %v\n%s", serr, standbyDiag.String())
	}
	if !strings.Contains(standbyDiag.String(), "taking over eos") {
		t.Fatalf("standby never took over:\n%s", standbyDiag.String())
	}
	if standbyOut.String() != want {
		t.Errorf("standby-merged figures differ from single-process oracle\n--- got ---\n%s--- want ---\n%s", standbyOut.String(), want)
	}
	raw, err := os.ReadFile(so.gapReport)
	if err != nil {
		t.Fatalf("gap report not written: %v", err)
	}
	var report struct {
		Complete bool             `json:"complete"`
		Missing  []map[string]any `json:"missing"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("gap report is not JSON: %v\n%s", err, raw)
	}
	if !report.Complete || len(report.Missing) != 0 {
		t.Errorf("takeover run's gap report claims gaps:\n%s", raw)
	}
}

// TestWorkerBadPayload: a worker handed garbage refuses with a usage
// exit code instead of crawling nonsense.
func TestWorkerBadPayload(t *testing.T) {
	if code := workerMain("{torn", io.Discard); code != 2 {
		t.Fatalf("bad payload exit code %d, want 2", code)
	}
}
