package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cli"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/eos"
	"repro/internal/rpcserve"
)

// TestMain doubles this test binary as the worker executable: when the
// coordinator under test execs os.Executable() with the payload env set,
// the subprocess lands here and runs workerMain instead of the tests —
// so the chaos tests SIGKILL REAL processes, not simulated ones.
func TestMain(m *testing.M) {
	if payload := os.Getenv(workerEnv); payload != "" {
		os.Exit(workerMain(payload, os.Stderr))
	}
	os.Exit(m.Run())
}

// newEOSServer serves a deterministic EOS chainsim over real HTTP so
// worker subprocesses can reach it.
func newEOSServer(t *testing.T, nBlocks int) *httptest.Server {
	t.Helper()
	c := eos.New(eos.DefaultConfig(1000))
	alice, bob := eos.MustName("alice"), eos.MustName("bob")
	for _, n := range []eos.Name{alice, bob} {
		if err := c.CreateAccount(n, eos.SystemAccount); err != nil {
			t.Fatal(err)
		}
		if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, n, chain.EOSAsset(1_000_0000)); err != nil {
			t.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 100_0000, 100_0000)
	}
	for i := 0; i < nBlocks; i++ {
		c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, alice, map[string]string{
			"from": "alice", "to": "bob", "quantity": "0.0001 EOS",
		}))
		c.ProduceBlock()
	}
	srv := httptest.NewServer(rpcserve.NewEOSServer(c))
	t.Cleanup(srv.Close)
	return srv
}

// blackout wraps an EOS server, answering 500 for every get_block inside
// [lo, hi] — a range of history that is permanently dark.
func blackout(t *testing.T, inner *httptest.Server, lo, hi int64) *httptest.Server {
	t.Helper()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/get_block") {
			body, _ := io.ReadAll(r.Body)
			var req struct {
				Num json.Number `json:"block_num_or_id"`
			}
			json.Unmarshal(body, &req)
			num, _ := req.Num.Int64()
			if num >= lo && num <= hi {
				http.Error(w, "blackout", http.StatusInternalServerError)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		inner.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

func eosHead(t *testing.T, url string) int64 {
	t.Helper()
	head, err := collect.NewEOSClient(url).Head(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return head
}

// oracle crawls [1, to] in one process and renders the figures — the
// byte-identity reference the distributed runs are diffed against.
func oracle(t *testing.T, url string, to int64) string {
	t.Helper()
	kit, err := core.NewStatsKit("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.IngestCrawl(context.Background(), collect.NewEOSClient(url),
		collect.CrawlConfig{From: 1, To: to, Workers: 4},
		kit.Decoder, core.IngestConfig{}); err != nil {
		t.Fatalf("oracle crawl: %v", err)
	}
	return kit.Summarize().Render()
}

func testOpts(endpoint, store string) coordOpts {
	return coordOpts{
		chain: "eos", endpoint: endpoint, from: 1, to: 0,
		shards: 3, store: store, every: 5,
		leaseTTL: time.Minute, attempts: 8, backoff: 5 * time.Millisecond,
		workers: 2, ingest: 2, batch: 4, buffer: 8,
		retries: 2, fetchBO: 5 * time.Millisecond,
	}
}

// TestCoordinateChaosKillResume is the command-level chaos acceptance
// path: seeded store faults on every blob operation AND a worker
// subprocess SIGKILLed right after its first checkpoint. The coordinator
// must relaunch it, the relaunch must resume from the checkpoint, and
// the merged figures must be byte-identical to a single-process crawl.
func TestCoordinateChaosKillResume(t *testing.T) {
	srv := newEOSServer(t, 45)
	head := eosHead(t, srv.URL)
	want := oracle(t, srv.URL, head)

	dir := t.TempDir()
	o := testOpts(srv.URL, "faulty+file://"+filepath.Join(dir, "store")+"?fault=0.01&fault-seed=7")
	o.gapReport = filepath.Join(dir, "gaps.json")
	o.chaosKill = 2

	var out, diag bytes.Buffer
	if err := run(context.Background(), o, &out, &diag); err != nil {
		t.Fatalf("coordinate under chaos: %v\n%s", err, diag.String())
	}
	if out.String() != want {
		t.Errorf("merged figures differ from single-process oracle\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
	// The SIGKILL really happened and was retried, not dodged.
	if !strings.Contains(diag.String(), "signal: killed") {
		t.Errorf("chaos kill never fired:\n%s", diag.String())
	}
	if !strings.Contains(diag.String(), "resuming:") {
		t.Errorf("relaunched worker did not resume from its checkpoint:\n%s", diag.String())
	}

	raw, err := os.ReadFile(o.gapReport)
	if err != nil {
		t.Fatalf("gap report not written: %v", err)
	}
	var report struct {
		Complete bool             `json:"complete"`
		Missing  []map[string]any `json:"missing"`
		Failures []map[string]any `json:"failures"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("gap report is not JSON: %v\n%s", err, raw)
	}
	if !report.Complete || len(report.Missing) != 0 || len(report.Failures) != 0 {
		t.Errorf("complete run's gap report claims gaps:\n%s", raw)
	}
}

// TestCoordinateGapReportPartial: one slice's history is permanently
// dark. The run must exit non-nil but still print the partial figures
// and write a gap report naming exactly the missing range.
func TestCoordinateGapReportPartial(t *testing.T) {
	inner := newEOSServer(t, 30)
	head := eosHead(t, inner.URL)
	spec := cli.ShardSpec{I: 2, N: 3}
	lo, hi, err := spec.Cut(1, head)
	if err != nil {
		t.Fatal(err)
	}
	srv := blackout(t, inner, lo, hi)

	dir := t.TempDir()
	o := testOpts(srv.URL, "file://"+filepath.Join(dir, "store"))
	o.to = head
	o.attempts = 2
	o.retries = 0
	o.gapReport = filepath.Join(dir, "gaps.json")

	var out, diag bytes.Buffer
	err = run(context.Background(), o, &out, &diag)
	if err == nil {
		t.Fatalf("run with a dark slice reported success:\n%s", diag.String())
	}
	if !strings.Contains(err.Error(), "partial") {
		t.Errorf("error %v does not say the figures are partial", err)
	}
	if !strings.Contains(out.String(), "--- eos figures ---") {
		t.Errorf("degraded run printed no partial figures:\n%s", out.String())
	}

	raw, rerr := os.ReadFile(o.gapReport)
	if rerr != nil {
		t.Fatalf("gap report not written: %v", rerr)
	}
	var report struct {
		Complete bool `json:"complete"`
		Missing  []struct {
			From int64 `json:"from"`
			To   int64 `json:"to"`
		} `json:"missing"`
		Failures []struct {
			Task  string `json:"task"`
			Error string `json:"error"`
		} `json:"failures"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("gap report is not JSON: %v\n%s", err, raw)
	}
	if report.Complete {
		t.Errorf("degraded run's report claims completeness:\n%s", raw)
	}
	if len(report.Missing) != 1 || report.Missing[0].From != lo || report.Missing[0].To != hi {
		t.Errorf("missing ranges %+v, want exactly [%d, %d]", report.Missing, lo, hi)
	}
	if len(report.Failures) != 1 || !strings.Contains(report.Failures[0].Task, "eos-") {
		t.Errorf("failures %+v do not name the dark slice", report.Failures)
	}
}

// TestWorkerBadPayload: a worker handed garbage refuses with a usage
// exit code instead of crawling nonsense.
func TestWorkerBadPayload(t *testing.T) {
	if code := workerMain("{torn", io.Discard); code != 2 {
		t.Fatalf("bad payload exit code %d, want 2", code)
	}
}
