// Command serve is the online stats serving layer: it ingests block
// history continuously — from live chain endpoints (with an optional
// archive tee), from an archived crawl replayed offline, or from the whole
// reproduction pipeline — and answers per-chain summary, figure and
// percentile queries over HTTP/JSON while ingestion is still running.
//
// Reads never wait on ingestion: every query answers from an immutable
// snapshot swapped in atomically per merge epoch (see internal/serve), and
// every response carries its epoch and staleness. Once the feeds drain the
// final epoch's figures are byte-identical to what cmd/report -replay
// prints for the same blocks — the CI serve job diffs exactly that — and
// the server keeps answering until SIGINT/SIGTERM, which shuts it down
// cleanly like cmd/crawl.
//
// Usage:
//
//	serve -addr :8080 -replay STORE
//	serve -addr :8080 -eos URL [-tezos URL] [-xrp URL] [-archive STORE]
//	serve -addr :8080 -pipeline
//
// STORE is a blob-store location: a plain directory path, file://PATH,
// mem://NAME, or s3://BUCKET/PREFIX?endpoint=URL.
//
// Endpoints: /healthz (liveness), /readyz (readiness — 503 until the
// first snapshot epoch publishes), /v1/status, /v1/chains,
// /v1/summary/{chain}, /v1/figures[/{chain}],
// /v1/percentiles/{chain}?p=50,90,99.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/blobstore"
	"repro/internal/cli"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

type serveOpts struct {
	addr  string
	eos   string
	tezos string
	xrp   string
	cli.ArchiveFlags
	runPipeline bool
	epoch       time.Duration
	mergeEvery  int
	workers     int
	ingest      int
	batch       int
	buffer      int

	// ready, when set, is called with the base URL once the listener is
	// accepting — the hook tests use to query mid-ingest.
	ready func(baseURL string)
}

func main() {
	var o serveOpts
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "HTTP listen address")
	flag.StringVar(&o.eos, "eos", "", "EOS endpoint URL to crawl live")
	flag.StringVar(&o.tezos, "tezos", "", "Tezos endpoint URL to crawl live")
	flag.StringVar(&o.xrp, "xrp", "", "XRP WebSocket endpoint URL to crawl live")
	o.ArchiveFlags.Register(flag.CommandLine, cli.ModeServe)
	flag.BoolVar(&o.runPipeline, "pipeline", false, "serve the full reproduction pipeline's stages as they crawl")
	flag.DurationVar(&o.epoch, "epoch", 200*time.Millisecond, "snapshot publish interval")
	flag.IntVar(&o.mergeEvery, "merge-every", 0, "ingest batches between shard merges (0 = default)")
	flag.IntVar(&o.workers, "workers", 4, "concurrent fetchers per live feed (xrp uses 1)")
	flag.IntVar(&o.ingest, "ingest", 2, "decode/ingest workers per feed")
	flag.IntVar(&o.batch, "batch", 16, "blocks per ingest batch")
	flag.IntVar(&o.buffer, "buffer", 64, "stream buffer per live feed")
	flag.Parse()
	if err := o.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// lockedWriter serializes progress lines from concurrent feeds.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// run is the whole command behind flag parsing and signal wiring, testable
// with a cancellable context and an output buffer. Lifecycle: listen →
// start the publish loop → run every feed to drain → final epoch → keep
// serving the drained figures until ctx is cancelled → graceful shutdown.
func run(ctx context.Context, o serveOpts, rawOut io.Writer) error {
	out := &lockedWriter{w: rawOut}
	pub := serve.NewPublisher()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(pub)}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "serving:     %s\n", baseURL)
	if o.ready != nil {
		o.ready(baseURL)
	}

	// The publish loop outlives feed cancellation on purpose: it stops —
	// with one final epoch — only after every feed has fully drained, so
	// the last snapshot is guaranteed complete.
	tickCtx, tickStop := context.WithCancel(context.Background())
	tickDone := make(chan struct{})
	go func() {
		pub.Run(tickCtx, o.epoch)
		close(tickDone)
	}()

	feedErr := runFeeds(ctx, pub, o, out)

	tickStop()
	<-tickDone

	snap := pub.Current()
	for _, name := range snap.Names() {
		st := snap.Chains[name]
		fmt.Fprintf(out, "drained:     %s — %d blocks, %d txs/ops (epoch %d)\n",
			name, st.Summary.Blocks, st.Summary.Transactions, snap.Epoch)
	}

	interrupted := errors.Is(feedErr, context.Canceled)
	if feedErr != nil && !interrupted {
		srv.Close()
		return feedErr
	}
	if interrupted {
		fmt.Fprintln(out, "interrupted mid-ingest — serving partial figures until shutdown")
	}

	// Feeds are done; keep answering queries over the final snapshot until
	// the caller signals shutdown.
	<-ctx.Done()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-serveDone; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "shutdown:    clean")
	return nil
}

// runFeeds drives every configured ingest feed to completion and returns
// their joined errors. Exactly one feed mode applies per invocation.
func runFeeds(ctx context.Context, pub *serve.Publisher, o serveOpts, out io.Writer) error {
	switch {
	case o.Replaying():
		return replayFeeds(ctx, pub, o, out)
	case o.runPipeline:
		popts := pipeline.DefaultOptions()
		popts.Workers = o.workers
		popts.Buffer = o.buffer
		popts.Batch = o.batch
		popts.Serve = pub
		if o.Archive != "" {
			popts.ArchiveDir = o.Archive
		}
		_, err := pipeline.Run(ctx, popts)
		return err
	case o.eos != "" || o.tezos != "" || o.xrp != "":
		type feed struct{ chain, endpoint string }
		var feeds []feed
		for _, f := range []feed{{"eos", o.eos}, {"tezos", o.tezos}, {"xrp", o.xrp}} {
			if f.endpoint != "" {
				feeds = append(feeds, f)
			}
		}
		errs := make([]error, len(feeds))
		var wg sync.WaitGroup
		for i, f := range feeds {
			wg.Add(1)
			go func(i int, f feed) {
				defer wg.Done()
				errs[i] = liveFeed(ctx, pub, o, f.chain, f.endpoint, out)
			}(i, f)
		}
		wg.Wait()
		return errors.Join(errs...)
	default:
		return errors.New("nothing to serve: pass -replay DIR, -pipeline, or at least one of -eos/-tezos/-xrp")
	}
}

// replayFeeds serves archived crawls: every archive under o.Replay replays
// segment-parallel into its own registered feed, all concurrently.
func replayFeeds(ctx context.Context, pub *serve.Publisher, o serveOpts, out io.Writer) error {
	dirs, err := archive.Discover(o.Replay)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(dirs))
	for i, dir := range dirs {
		rd, err := archive.Open(dir)
		if err != nil {
			return err
		}
		if rd.Blocks() == 0 {
			fmt.Fprintf(out, "skipping:    %s (empty archive)\n", dir)
			continue
		}
		wg.Add(1)
		go func(i int, dir string, rd *archive.Reader) {
			defer wg.Done()
			n, ferr := pub.FeedArchive(ctx, rd, serve.FeedConfig{
				MergeEvery: o.mergeEvery,
				Ingest:     core.IngestConfig{Workers: o.ingest, Batch: o.batch},
			})
			if ferr != nil {
				errs[i] = fmt.Errorf("replaying %s: %w", dir, ferr)
				return
			}
			fmt.Fprintf(out, "replayed:    %s — %d blocks from %s\n", rd.Chain(), n, dir)
		}(i, dir, rd)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// liveFeed crawls one chain endpoint into the publisher, optionally teeing
// every raw block into an archive for later offline replay.
func liveFeed(ctx context.Context, pub *serve.Publisher, o serveOpts, chainName, endpoint string, out io.Writer) error {
	var fetcher collect.BlockFetcher
	workers := o.workers
	switch chainName {
	case "eos":
		fetcher = collect.NewEOSClient(endpoint)
	case "tezos":
		fetcher = collect.NewTezosClient(endpoint)
	case "xrp":
		client := collect.NewXRPClient(endpoint)
		defer client.Close()
		fetcher = client
		workers = 1 // the WebSocket protocol is sequential per connection
	}

	ccfg := collect.CrawlConfig{
		From: o.From, To: o.To,
		Workers: workers, Buffer: o.buffer,
		MaxRetries: 8, Backoff: 5 * time.Millisecond,
	}
	var sink *archive.Writer
	if o.Archive != "" {
		var err error
		sink, err = archive.NewWriter(archive.WriterConfig{
			Dir: blobstore.Join(o.Archive, chainName), Chain: chainName,
		})
		if err != nil {
			return err
		}
		ccfg.Tee = sink.Append
	}

	res, err := pub.Feed(ctx, fetcher, ccfg, serve.FeedConfig{
		Chain:      chainName,
		MergeEvery: o.mergeEvery,
		Ingest:     core.IngestConfig{Workers: o.ingest, Batch: o.batch},
	})
	if sink != nil {
		if cerr := sink.Close(); cerr != nil {
			err = errors.Join(err, fmt.Errorf("finalizing %s archive: %w", chainName, cerr))
		}
	}
	fmt.Fprintf(out, "ingested:    %s — %d blocks (failed %d, retries %d)\n",
		chainName, res.Blocks, res.Failed, res.Retries)
	return err
}
