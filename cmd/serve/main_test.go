package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/chain"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/eos"
	"repro/internal/rpcserve"
)

// newEOSSim builds an in-process EOS chain with nBlocks one-transfer blocks
// and serves it over the same HTTP RPC surface cmd/chainsim exposes.
func newEOSSim(t *testing.T, nBlocks int) *httptest.Server {
	t.Helper()
	c := eos.New(eos.DefaultConfig(1000))
	alice, bob := eos.MustName("alice"), eos.MustName("bob")
	for _, n := range []eos.Name{alice, bob} {
		if err := c.CreateAccount(n, eos.SystemAccount); err != nil {
			t.Fatal(err)
		}
		if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, n, chain.EOSAsset(1_000_0000)); err != nil {
			t.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 100_0000, 100_0000)
	}
	for i := 0; i < nBlocks; i++ {
		c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, alice, map[string]string{
			"from": "alice", "to": "bob", "quantity": "0.0001 EOS",
		}))
		c.ProduceBlock()
	}
	srv := httptest.NewServer(rpcserve.NewEOSServer(c))
	t.Cleanup(srv.Close)
	return srv
}

// startServe runs the command's run() with a ready hook and returns the
// base URL, a cancel func, and a channel carrying run's error.
func startServe(t *testing.T, o serveOpts, out io.Writer) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	o.addr = "127.0.0.1:0"
	o.ready = func(u string) { ready <- u }
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, o, out) }()
	select {
	case u := <-ready:
		return u, cancel, errc
	case err := <-errc:
		cancel()
		t.Fatalf("run exited before ready: %v", err)
		return "", nil, nil
	}
}

func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// waitDrained polls /v1/status until the snapshot reports every feed
// drained.
func waitDrained(t *testing.T, baseURL string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, body := httpGet(t, baseURL+"/v1/status")
		var st struct {
			Drained bool `json:"drained"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad status body %s: %v", body, err)
		}
		if st.Drained {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("feeds never drained")
}

// TestServeEndToEnd drives the full lifecycle twice over the same blocks:
// a live crawl from an in-process EOS sim (teeing an archive), then an
// offline replay serve of that archive. Both must end at figures
// byte-identical to a direct cmd/report-style replay of the archive — the
// live/replay/serve determinism triangle the CI serve job also diffs.
func TestServeEndToEnd(t *testing.T) {
	const nBlocks = 80
	sim := newEOSSim(t, nBlocks)
	archiveDir := t.TempDir()

	// --- live serve, teeing the archive ---
	var liveOut bytes.Buffer
	o := serveOpts{
		ArchiveFlags: cli.ArchiveFlags{Archive: archiveDir, From: 1},
		eos:          sim.URL,
		epoch:        20 * time.Millisecond,
		workers:      4, ingest: 2, batch: 8, buffer: 32,
	}
	baseURL, cancel, errc := startServe(t, o, &liveOut)

	// Mid-ingest queries must answer with staleness metadata no matter the
	// crawl's progress.
	resp, _ := httpGet(t, baseURL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Serve-Epoch") == "" || resp.Header.Get("X-Serve-Published") == "" {
		t.Fatal("missing staleness headers mid-ingest")
	}

	waitDrained(t, baseURL)

	resp, sumBody := httpGet(t, baseURL+"/v1/summary/eos")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: %d %s", resp.StatusCode, sumBody)
	}
	var sum struct {
		Blocks  int64 `json:"blocks"`
		Drained bool  `json:"drained"`
		Epoch   int64 `json:"epoch"`
	}
	if err := json.Unmarshal(sumBody, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Blocks != nBlocks || !sum.Drained || sum.Epoch < 1 {
		t.Fatalf("summary = %+v, want %d drained blocks", sum, nBlocks)
	}

	_, pctBody := httpGet(t, baseURL+"/v1/percentiles/eos?p=50,99")
	var pct struct {
		Percentiles []struct{ P, Value float64 } `json:"percentiles"`
	}
	if err := json.Unmarshal(pctBody, &pct); err != nil || len(pct.Percentiles) != 2 {
		t.Fatalf("percentiles = %s (err %v)", pctBody, err)
	}

	_, liveFigures := httpGet(t, baseURL+"/v1/figures")

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("live run: %v", err)
	}
	if !strings.Contains(liveOut.String(), "shutdown:    clean") {
		t.Fatalf("no clean shutdown in output:\n%s", liveOut.String())
	}

	// --- the oracle: a direct offline replay, as cmd/report -replay runs it ---
	rd, err := archive.Open(filepath.Join(archiveDir, "eos"))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Blocks() != nBlocks {
		t.Fatalf("archive holds %d blocks, want %d", rd.Blocks(), nBlocks)
	}
	kit, err := core.NewStatsKit("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.IngestArchive(context.Background(), rd, kit.Decoder, core.IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	want := kit.Summarize().Render()

	if string(liveFigures) != want {
		t.Errorf("live-served figures diverge from the offline replay:\n--- served ---\n%s--- replay ---\n%s", liveFigures, want)
	}

	// --- replay serve over the teed archive ---
	var replayOut bytes.Buffer
	o2 := serveOpts{
		ArchiveFlags: cli.ArchiveFlags{Replay: archiveDir},
		epoch:        20 * time.Millisecond,
		ingest:       2, batch: 8,
	}
	baseURL2, cancel2, errc2 := startServe(t, o2, &replayOut)
	waitDrained(t, baseURL2)
	_, replayFigures := httpGet(t, baseURL2+"/v1/figures")
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if string(replayFigures) != want {
		t.Errorf("replay-served figures diverge from the offline replay:\n--- served ---\n%s--- replay ---\n%s", replayFigures, want)
	}
}

// TestServeInterruptMidIngest cancels while the crawl is still running; the
// server must drain what it has, report the interruption, and exit cleanly.
func TestServeInterruptMidIngest(t *testing.T) {
	sim := newEOSSim(t, 200)
	var out bytes.Buffer
	o := serveOpts{
		ArchiveFlags: cli.ArchiveFlags{From: 1},
		eos:          sim.URL,
		epoch:        10 * time.Millisecond,
		workers:      1, ingest: 1, batch: 1, buffer: 1,
	}
	_, cancel, errc := startServe(t, o, &out)
	cancel() // interrupt immediately — likely mid-crawl
	if err := <-errc; err != nil {
		t.Fatalf("interrupted run returned error: %v", err)
	}
}

func TestServeNothingConfigured(t *testing.T) {
	err := run(context.Background(), serveOpts{addr: "127.0.0.1:0"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "nothing to serve") {
		t.Fatalf("err = %v", err)
	}
}
